"""The bytecode instruction set of the repro stack machine.

The ISA is a compact, Java-flavoured stack machine: operands live on a
per-frame operand stack, locals in numbered slots.  Every instruction is
an :class:`repro.bytecode.code.Instr` with an opcode string plus up to
two arguments.  Jump targets are instruction indices ("bci").

Opcodes and their stack behaviour (``[before] -> [after]``, stack top on
the right):

Stack / constants
    ``CONST v``        ``[] -> [v]``        push a literal (int/float/bool/str/None)
    ``LOAD s``         ``[] -> [x]``        push local slot ``s``
    ``STORE s``        ``[x] -> []``        pop into local slot ``s``
    ``POP``            ``[x] -> []``
    ``DUP``            ``[x] -> [x, x]``
    ``SWAP``           ``[x, y] -> [y, x]``
    ``NOP``            no effect

Objects / fields
    ``NEW c``          ``[] -> [obj]``      allocate instance of class ``c``
    ``GETF f``         ``[obj] -> [v]``     read instance field
    ``PUTF f``         ``[obj, v] -> []``   write instance field
    ``GETS (c, f)``    ``[] -> [v]``        read static field
    ``PUTS (c, f)``    ``[v] -> []``        write static field
    ``ISREMOTE``       ``[x] -> [b]``       status check: is ``x`` an unresolved remote ref?

Arrays
    ``NEWARR (kind, elem_bytes)`` ``[n] -> [arr]``  allocate array
    ``ALOAD``          ``[arr, i] -> [v]``
    ``ASTORE``         ``[arr, i, v] -> []``
    ``LEN``            ``[arr] -> [n]``

Arithmetic / comparison / logic
    ``ADD SUB MUL DIV MOD``  ``[a, b] -> [a op b]``
    ``NEG``            ``[a] -> [-a]``
    ``EQ NE LT LE GT GE``    ``[a, b] -> [bool]``
    ``NOT``            ``[a] -> [not a]``

Control flow
    ``JMP t``          unconditional jump to bci ``t``
    ``JZ t``           ``[c] -> []`` jump if ``c`` is falsy
    ``JNZ t``          ``[c] -> []`` jump if ``c`` is truthy
    ``LSWITCH (table, default)`` ``[k] -> []`` jump to ``table[k]`` or default
    ``RET``            return void (caller sees ``None``)
    ``RETV``           ``[v] -> ()`` return ``v``
    ``THROW``          ``[exc] -> ()`` raise guest exception object

Invocation
    ``INVOKESTATIC (c, m) n``  ``[a1..an] -> [r]``        static call
    ``INVOKEVIRT m n``         ``[obj, a1..an] -> [r]``   virtual call
    ``NATIVE name n``          ``[a1..an] -> [r]``        native (host) call

All invocations push exactly one result (void methods push ``None``);
expression statements compile a trailing ``POP``.
"""

from __future__ import annotations

from typing import Tuple

# -- opcode name constants -------------------------------------------------

CONST = "CONST"
LOAD = "LOAD"
STORE = "STORE"
POP = "POP"
DUP = "DUP"
SWAP = "SWAP"
NOP = "NOP"

NEW = "NEW"
GETF = "GETF"
PUTF = "PUTF"
GETS = "GETS"
PUTS = "PUTS"
ISREMOTE = "ISREMOTE"

NEWARR = "NEWARR"
ALOAD = "ALOAD"
ASTORE = "ASTORE"
LEN = "LEN"

ADD = "ADD"
SUB = "SUB"
MUL = "MUL"
DIV = "DIV"
MOD = "MOD"
NEG = "NEG"
EQ = "EQ"
NE = "NE"
LT = "LT"
LE = "LE"
GT = "GT"
GE = "GE"
NOT = "NOT"

JMP = "JMP"
JZ = "JZ"
JNZ = "JNZ"
LSWITCH = "LSWITCH"
RET = "RET"
RETV = "RETV"
THROW = "THROW"

INVOKESTATIC = "INVOKESTATIC"
INVOKEVIRT = "INVOKEVIRT"
NATIVE = "NATIVE"

#: the full ISA in canonical order — the *position* of an opcode in this
#: tuple is its dense integer code (see :data:`OP_IDS`), used by the
#: pre-decoded interpreter so dispatch compares small ints instead of
#: strings.  Append-only: decoded streams bake these ids in.
OPCODES = (
    CONST, LOAD, STORE, POP, DUP, SWAP, NOP,
    NEW, GETF, PUTF, GETS, PUTS, ISREMOTE,
    NEWARR, ALOAD, ASTORE, LEN,
    # binary operators are kept contiguous so the dispatch loop can
    # range-test them with two int compares
    ADD, SUB, MUL, DIV, MOD, EQ, NE, LT, LE, GT, GE,
    NEG, NOT,
    JMP, JZ, JNZ, LSWITCH, RET, RETV, THROW,
    INVOKESTATIC, INVOKEVIRT, NATIVE,
)

#: opcode name -> dense integer code
OP_IDS = {name: i for i, name in enumerate(OPCODES)}

#: first id available for synthetic superinstructions (fused opcodes
#: live above the base ISA; see :mod:`repro.preprocess.fuse`)
FUSED_BASE = len(OPCODES)


def opid(name: str) -> int:
    """Dense integer code for ``name`` (KeyError on unknown opcodes)."""
    return OP_IDS[name]


#: every opcode in the ISA
ALL_OPS = frozenset(OPCODES)

#: opcodes that transfer control unconditionally (no fallthrough)
TERMINATORS = frozenset({JMP, LSWITCH, RET, RETV, THROW})

#: opcodes with a single bci argument in slot ``a``
BRANCHES = frozenset({JMP, JZ, JNZ})

_BINOPS = frozenset({ADD, SUB, MUL, DIV, MOD, EQ, NE, LT, LE, GT, GE})
_UNOPS = frozenset({NEG, NOT})

#: fixed (pops, pushes) for opcodes with static stack effect
_STATIC_EFFECT = {
    CONST: (0, 1), LOAD: (0, 1), STORE: (1, 0), POP: (1, 0), DUP: (1, 2),
    SWAP: (2, 2), NOP: (0, 0),
    NEW: (0, 1), GETF: (1, 1), PUTF: (2, 0), GETS: (0, 1), PUTS: (1, 0),
    ISREMOTE: (1, 1),
    NEWARR: (1, 1), ALOAD: (2, 1), ASTORE: (3, 0), LEN: (1, 1),
    JMP: (0, 0), JZ: (1, 0), JNZ: (1, 0), LSWITCH: (1, 0),
    RET: (0, 0), RETV: (1, 0), THROW: (1, 0),
}
_STATIC_EFFECT.update({op: (2, 1) for op in _BINOPS})
_STATIC_EFFECT.update({op: (1, 1) for op in _UNOPS})


def stack_effect(op: str, a=None, b=None) -> Tuple[int, int]:
    """Return ``(pops, pushes)`` for one instruction.

    For invocation opcodes the effect depends on the argument count
    (stored in ``b``).
    """
    if op in _STATIC_EFFECT:
        return _STATIC_EFFECT[op]
    if op == INVOKESTATIC or op == NATIVE:
        return (int(b), 1)
    if op == INVOKEVIRT:
        return (int(b) + 1, 1)
    raise KeyError(f"unknown opcode {op!r}")


def is_call(op: str) -> bool:
    """True for opcodes that create a new frame or leave the VM."""
    return op in (INVOKESTATIC, INVOKEVIRT, NATIVE)
