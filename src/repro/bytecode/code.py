"""Code objects: instructions, exception tables, methods and classes.

A :class:`ClassFile` is the unit the class preprocessor transforms and
the unit shipped over the network on demand during migration (the paper's
"code migration").  It holds field declarations and
:class:`CodeObject` methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bytecode import opcodes as op


class Instr:
    """One bytecode instruction: an opcode plus up to two arguments.

    Instances are treated as immutable by convention; transformation
    passes build new lists.
    """

    __slots__ = ("op", "a", "b")

    def __init__(self, opcode: str, a: Any = None, b: Any = None):
        self.op = opcode
        self.a = a
        self.b = b

    def replace(self, a: Any = None, b: Any = None) -> "Instr":
        """A copy with ``a``/``b`` overridden (pass ``None`` to keep)."""
        return Instr(self.op, self.a if a is None else a, self.b if b is None else b)

    def __repr__(self) -> str:
        parts = [self.op]
        if self.a is not None:
            parts.append(repr(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Instr) and self.op == other.op
                and self.a == other.a and self.b == other.b)

    def __hash__(self) -> int:
        # Cheap structural hash; LSWITCH carries a dict argument, so fall
        # back to repr() only when an argument is unhashable.
        try:
            return hash((self.op, self.a, self.b))
        except TypeError:
            return hash((self.op, repr(self.a), repr(self.b)))


@dataclass(frozen=True)
class ExcEntry:
    """One exception-table row: if a guest exception whose class matches
    ``exc_class`` (or any, for ``"Throwable"``) unwinds out of bci range
    ``[start, end)``, control transfers to ``handler`` with the exception
    object pushed on the (cleared) operand stack."""

    start: int
    end: int
    handler: int
    exc_class: str


@dataclass(frozen=True)
class FieldDecl:
    """A field declaration: name, static flag, declared type name, and
    nominal per-element byte width (drives serialization cost)."""

    name: str
    is_static: bool = False
    type_name: str = "int"
    nominal_bytes: int = 8


class CodeObject:
    """A compiled method body.

    Attributes:
        class_name / name: owning class and method name (identity).
        nparams: number of parameters (slot 0..nparams-1; instance
            methods receive ``this`` in slot 0).
        max_locals: total local slots (params + declared + temps).
        is_static: static methods have no ``this``.
        instrs: the instruction list; bci == list index.
        line_table: sorted ``(bci, source_line)`` pairs; a line's region
            extends to the next entry.
        exc_table: exception-table rows (searched in order).
        local_names: debug names per slot (VMTI LocalVariableTable).
        msps: migration-safe bcis (filled by the preprocessor; empty
            operand stack guaranteed at these points).
        version: which preprocessing build produced this code:
            ``original`` / ``faulting`` / ``checking``.
    """

    def __init__(self, class_name: str, name: str, nparams: int,
                 max_locals: int, instrs: Sequence[Instr],
                 line_table: Optional[Sequence[Tuple[int, int]]] = None,
                 exc_table: Optional[Sequence[ExcEntry]] = None,
                 local_names: Optional[Sequence[str]] = None,
                 is_static: bool = True,
                 version: str = "original"):
        self.class_name = class_name
        self.name = name
        self.nparams = nparams
        self.max_locals = max_locals
        self.is_static = is_static
        self.instrs: List[Instr] = list(instrs)
        self.line_table: List[Tuple[int, int]] = sorted(line_table or [(0, 1)])
        self.exc_table: List[ExcEntry] = list(exc_table or [])
        self.local_names: List[str] = list(
            local_names or [f"v{i}" for i in range(max_locals)]
        )
        self.msps: set[int] = set()
        self.version = version
        #: tier-up profile: frame entries + loop back-edges observed by
        #: the fast loop.  Shared across machines on purpose — hotness
        #: is a property of the program, not of one VM — so machines
        #: compare against the threshold with ``>=``, never ``==``.
        self.hotness = 0
        #: cache for :meth:`predecoded`: id(weights) -> (weights, stream).
        #: The weight table itself is kept in the entry so the id cannot
        #: be recycled by a new dict while the cache is alive.
        self._predecoded: Dict[
            int, Tuple[Dict[str, float],
                       List[Tuple[int, Any, Any, float]]]] = {}

    # -- identity / display ------------------------------------------------

    @property
    def qualname(self) -> str:
        """``Class.method`` display name."""
        return f"{self.class_name}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CodeObject {self.qualname} [{len(self.instrs)} instrs]>"

    # -- line table --------------------------------------------------------

    def line_of(self, bci: int) -> int:
        """Source line containing ``bci``."""
        line = self.line_table[0][1]
        for start, ln in self.line_table:
            if start > bci:
                break
            line = ln
        return line

    def line_start(self, bci: int) -> int:
        """The bci at which the source line containing ``bci`` starts."""
        start_bci = self.line_table[0][0]
        for start, _ln in self.line_table:
            if start > bci:
                break
            start_bci = start
        return start_bci

    def line_starts(self) -> List[int]:
        """All line-start bcis in order."""
        return [bci for bci, _ in self.line_table]

    # -- pre-decoding ------------------------------------------------------

    def predecoded(self, weights: Dict[str, float]
                   ) -> List[Tuple[int, Any, Any, float]]:
        """The cached tuple-form instruction stream.

        Slot ``i`` holds ``(opid, a, b, weight)`` for ``instrs[i]``:
        the dense integer opcode (:data:`repro.bytecode.opcodes.OP_IDS`),
        the two raw arguments, and the pre-resolved cost weight from
        ``weights`` (default 1.0) — so the interpreter's hot loop never
        touches opcode strings or the weight table.

        The stream is cached per weight-table identity; callers that
        mutate ``instrs`` after execution started (no in-tree pass does)
        must call :meth:`invalidate_decoded`.
        """
        entry = self._predecoded.get(id(weights))
        if (entry is not None and entry[0] is weights
                and len(entry[1]) == len(self.instrs)):
            return entry[1]
        get_w = weights.get
        ids = op.OP_IDS
        stream = [(ids[i.op], i.a, i.b, get_w(i.op, 1.0))
                  for i in self.instrs]
        self._predecoded[id(weights)] = (weights, stream)
        return stream

    def invalidate_decoded(self) -> None:
        """Drop cached decoded streams (after in-place instr mutation)."""
        self._predecoded.clear()

    # -- transformation support ---------------------------------------------

    def copy(self) -> "CodeObject":
        """A deep-enough copy for transformation passes."""
        c = CodeObject(
            self.class_name, self.name, self.nparams, self.max_locals,
            [Instr(i.op, i.a, i.b) for i in self.instrs],
            list(self.line_table), list(self.exc_table),
            list(self.local_names), self.is_static, self.version,
        )
        c.msps = set(self.msps)
        return c


class ClassFile:
    """A compiled class: fields, methods, optional superclass.

    ``statics_nominal_bytes`` is used by migration cost accounting for
    "accumulated size of static fields" (Table I's F column includes a
    64 MB static FFT array).
    """

    def __init__(self, name: str, superclass: Optional[str] = None,
                 fields: Optional[Sequence[FieldDecl]] = None,
                 methods: Optional[Dict[str, CodeObject]] = None,
                 version: str = "original"):
        self.name = name
        self.superclass = superclass
        self.fields: List[FieldDecl] = list(fields or [])
        self.methods: Dict[str, CodeObject] = dict(methods or {})
        self.version = version

    def field(self, name: str) -> Optional[FieldDecl]:
        """Find a field declared directly on this class."""
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def instance_fields(self) -> List[FieldDecl]:
        """Non-static fields declared directly on this class."""
        return [f for f in self.fields if not f.is_static]

    def static_fields(self) -> List[FieldDecl]:
        """Static fields declared directly on this class."""
        return [f for f in self.fields if f.is_static]

    def copy(self) -> "ClassFile":
        """Deep-enough copy for the preprocessor."""
        return ClassFile(
            self.name, self.superclass, list(self.fields),
            {n: m.copy() for n, m in self.methods.items()}, self.version,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ClassFile {self.name} ({self.version})>"


def remap_targets(instrs: Sequence[Instr], mapping: Dict[int, int]) -> List[Instr]:
    """Rewrite all jump targets through ``mapping`` (old bci -> new bci).

    Used by transformation passes after instruction insertion.
    """
    out: List[Instr] = []
    for ins in instrs:
        if ins.op in op.BRANCHES:
            out.append(Instr(ins.op, mapping[ins.a], ins.b))
        elif ins.op == op.LSWITCH:
            table = {k: mapping[v] for k, v in ins.a.items()}
            out.append(Instr(ins.op, table, mapping[ins.b]))
        else:
            out.append(Instr(ins.op, ins.a, ins.b))
    return out
