"""A line-oriented assembler/disassembler for test and example use.

The MiniLang compiler emits :class:`CodeObject` directly; the assembler
exists so VM unit tests can express methods without the compiler, and so
humans can read dumps.  Format::

    method Geometry.displaceX static params=0 locals=3
      line 1
        CONST 2
        STORE 1
      line 2
        LOAD 1
        RETV
      catch 0 4 -> 5 NullPointerException
      L1:
        ...

* ``Lname:`` defines a label at the next instruction.
* Branch targets may be labels or literal integers.
* ``line N`` opens a new source line at the next instruction.
* ``catch a b -> h Exc`` appends an exception-table row (labels allowed).
"""

from __future__ import annotations

import ast as _pyast
import re
from typing import Dict, List, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import ClassFile, CodeObject, ExcEntry, FieldDecl, Instr
from repro.errors import VerifyError

_HEADER = re.compile(
    r"method\s+(\w+)\.(\w+)(\s+static)?\s+params=(\d+)\s+locals=(\d+)"
)
_LABEL = re.compile(r"^(\w+):$")
_CATCH = re.compile(r"catch\s+(\S+)\s+(\S+)\s*->\s*(\S+)\s+(\w+)")


def _parse_arg(tok: str, labels: Dict[str, int]):
    """Parse one instruction argument: label, literal, or python literal."""
    if tok in labels:
        return labels[tok]
    try:
        return _pyast.literal_eval(tok)
    except (ValueError, SyntaxError):
        return tok  # bare identifier -> string (field/class names)


def assemble(text: str) -> CodeObject:
    """Assemble one method from its textual form."""
    lines = [ln.strip() for ln in text.strip().splitlines() if ln.strip()
             and not ln.strip().startswith("#")]
    if not lines:
        raise VerifyError("empty assembly")
    m = _HEADER.match(lines[0])
    if not m:
        raise VerifyError(f"bad method header: {lines[0]!r}")
    cls, name, static, nparams, nlocals = (
        m.group(1), m.group(2), bool(m.group(3)), int(m.group(4)), int(m.group(5))
    )

    # First pass: resolve labels to bcis.
    labels: Dict[str, int] = {}
    bci = 0
    body: List[Tuple[str, str]] = []  # (kind, text)
    for ln in lines[1:]:
        lab = _LABEL.match(ln)
        if lab:
            labels[lab.group(1)] = bci
            continue
        if ln.startswith("line ") or _CATCH.match(ln):
            body.append(("meta", ln))
            continue
        body.append(("instr", ln))
        bci += 1

    instrs: List[Instr] = []
    line_table: List[Tuple[int, int]] = []
    exc_table: List[ExcEntry] = []
    for kind, ln in body:
        if kind == "meta":
            if ln.startswith("line "):
                line_table.append((len(instrs), int(ln.split()[1])))
            else:
                c = _CATCH.match(ln)
                assert c is not None
                start = _parse_arg(c.group(1), labels)
                end = _parse_arg(c.group(2), labels)
                handler = _parse_arg(c.group(3), labels)
                exc_table.append(ExcEntry(start, end, handler, c.group(4)))
            continue
        toks = ln.split(None, 1)
        opcode = toks[0]
        if opcode not in op.ALL_OPS:
            raise VerifyError(f"unknown opcode {opcode!r}")
        a = b = None
        if len(toks) > 1:
            rest = toks[1]
            if opcode in (op.INVOKESTATIC, op.INVOKEVIRT, op.NATIVE,
                          op.GETS, op.PUTS, op.NEWARR, op.LSWITCH):
                # Either one composite literal (tuple/dict) or two args
                # separated by whitespace at the top level.
                try:
                    a = _pyast.literal_eval(rest)
                except (ValueError, SyntaxError):
                    parts = rest.rsplit(None, 1)
                    if len(parts) == 2:
                        a = _parse_arg(parts[0], labels)
                        b = _parse_arg(parts[1], labels)
                    else:
                        a = _parse_arg(rest, labels)
            else:
                a = _parse_arg(rest, labels)
        instrs.append(Instr(opcode, a, b))

    if not line_table:
        line_table = [(0, 1)]
    return CodeObject(cls, name, nparams, nlocals, instrs, line_table,
                      exc_table, is_static=static)


def disassemble(code: CodeObject) -> str:
    """Render a method back to readable assembly (inverse-ish of
    :func:`assemble`; labels are emitted as literal bcis)."""
    out = [
        f"method {code.qualname}{' static' if code.is_static else ''} "
        f"params={code.nparams} locals={code.max_locals}"
    ]
    line_at = {bci: ln for bci, ln in code.line_table}
    for bci, ins in enumerate(code.instrs):
        if bci in line_at:
            out.append(f"  line {line_at[bci]}")
        msp = " ;msp" if bci in code.msps else ""
        out.append(f"  {bci:4d}: {ins}{msp}")
    for e in code.exc_table:
        out.append(f"  catch {e.start} {e.end} -> {e.handler} {e.exc_class}")
    return "\n".join(out)
