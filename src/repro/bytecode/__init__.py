"""Bytecode layer: ISA, code objects, assembler, verifier."""

from repro.bytecode.assembler import assemble, disassemble
from repro.bytecode.code import ClassFile, CodeObject, ExcEntry, FieldDecl, Instr
from repro.bytecode.verifier import stack_depths, verify, verify_class

__all__ = [
    "assemble", "disassemble",
    "ClassFile", "CodeObject", "ExcEntry", "FieldDecl", "Instr",
    "stack_depths", "verify", "verify_class",
]
