"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report [names...]`` — regenerate paper tables/figures (all by default;
  names like ``table4 roaming figure1``).
* ``run <workload>`` — run one registered workload locally and print its
  result and instruction count (``Fib``, ``NQ``, ``FFT``, ``TSP``).
* ``migrate <workload>`` — run it under SODEE with a top-frame migration
  and print the migration record and trace timeline.
* ``serve [--mix parallel] [--nodes 4] [--requests 32]`` — run the
  elastic cluster scheduler on a request mix and print the serving
  report (deterministic; ``--json`` for machine-readable output).
* ``disasm <file.mj> [Class.method]`` — compile a MiniLang file and print
  the (preprocessed) bytecode.
* ``workloads`` — list registered workloads with paper/sim parameters.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ALL, generate
    names = args.names or None
    if names:
        unknown = [n for n in names if n not in ALL]
        if unknown:
            print(f"unknown experiments: {unknown}; "
                  f"available: {sorted(ALL)}", file=sys.stderr)
            return 2
    print(generate(names))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import WORKLOADS
    for name, w in WORKLOADS.items():
        print(f"{name:5s} paper n={w.paper_n:<4d} sim args={w.sim_args} "
              f"JDK={w.paper_jdk_seconds}s trigger={w.trigger_method}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workloads import WORKLOADS, compiled
    from repro.vm import Machine
    w = WORKLOADS.get(args.workload)
    if w is None:
        print(f"unknown workload {args.workload!r}; "
              f"known: {sorted(WORKLOADS)}", file=sys.stderr)
        return 2
    machine = Machine(compiled(w.name, args.build))
    result = machine.call(w.main[0], w.main[1], list(w.sim_args))
    print(f"{w.name}{w.sim_args} = {result}  "
          f"[{machine.instr_count} instructions, build={args.build}]")
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.cluster import gige_cluster
    from repro.migration import SODEngine
    from repro.migration.tracing import Tracer, format_timeline
    from repro.workloads import WORKLOADS, compiled, expected_result
    w = WORKLOADS.get(args.workload)
    if w is None:
        print(f"unknown workload {args.workload!r}; "
              f"known: {sorted(WORKLOADS)}", file=sys.stderr)
        return 2
    engine = SODEngine(gige_cluster(2), compiled(w.name, "faulting"))
    tracer = Tracer().attach(engine)
    home = engine.host("node0")
    thread = engine.spawn(home, w.main[0], w.main[1], list(w.sim_args))
    status = engine.run(home, thread, stop=w.trigger())
    if status == "finished":
        print("trigger never fired; nothing migrated", file=sys.stderr)
        return 1
    result, rec = engine.run_segment_remote(home, thread, "node1",
                                            w.mig_frames)
    ok = result == expected_result(w.name)
    print(f"result={result} (correct={ok})")
    print(f"latency={rec.latency * 1e3:.2f} ms  "
          f"capture={rec.capture_time * 1e3:.2f}  "
          f"transfer={rec.transfer_time * 1e3:.2f}  "
          f"restore={rec.restore_time * 1e3:.2f}")
    print(format_timeline(tracer))
    return 0 if ok else 1


def _serve_real_backend(args: argparse.Namespace) -> int:
    """``serve --backend real``: multiprocess wall-clock mode.

    Virtual-time-only features (chaos schedules, trace record/replay,
    admission control, offload policies) are refused up front — they
    are defined in terms of the modeled clock.  The virtual backend
    remains the correctness oracle: ``--crosscheck`` re-serves the
    same seed there and compares request by request.
    """
    import json as _json

    from repro.runtime.real import available_cores, serve_real

    refused = [flag for flag, val in [
        ("--chaos", args.chaos), ("--record", args.record),
        ("--replay", args.replay), ("--shed-at", args.shed_at),
        ("--slo", args.slo)] if val is not None]
    if args.admission != "none":
        refused.append("--admission")
    if refused:
        print(f"--backend real is wall-clock mode; {', '.join(refused)} "
              f"only make sense in virtual time (run them on the "
              f"virtual oracle)", file=sys.stderr)
        return 2
    tenants = None
    if args.tenants:
        from repro.serve import parse_tenants
        tenants = parse_tenants(args.tenants)
    rep = serve_real(mix=args.mix, n_requests=args.requests,
                     seed=args.seed,
                     procs=args.procs or min(4, available_cores()),
                     interarrival=args.interarrival, tenants=tenants,
                     arrival_rate=args.arrival_rate)
    check = None
    if args.crosscheck:
        from repro.runtime.crosscheck import (CrosscheckError,
                                              crosscheck_real_vs_virtual)
        try:
            check = crosscheck_real_vs_virtual(
                rep, tenants=tenants, arrival_rate=args.arrival_rate)
        except CrosscheckError as e:
            print(f"CROSSCHECK FAILED:\n{e}", file=sys.stderr)
            return 1
    ok = rep["correct"] == rep["served"] and rep["unserved"] == 0 \
        and rep["failed"] == 0
    if args.json:
        out = dict(rep)
        if check is not None:
            out["crosscheck"] = check
        print(_json.dumps(out, indent=2))
        return 0 if ok else 1
    s = rep["sched"]
    w = rep["wall"]
    print(f"backend=real mix={rep['mix']} procs={rep['procs']} "
          f"served={rep['served']}/{rep['submitted']} "
          f"correct={rep['correct']}")
    print(f"wall={w['seconds']:.3f}s  throughput={w['throughput_rps']:.1f} "
          f"req/s  usable cores={w['cores']}")
    print(f"steals={s['steals']} migrations={s['migrations']} "
          f"(image {s['image_bytes']} B, class tokens {s['token_bytes']} B, "
          f"{s['statics_elided']} statics elided, {s['bytes_saved']} B "
          f"kept off the wire)")
    if s["crashes"]:
        print(f"chaos: {s['crashes']} worker crashes, "
              f"{s['retries']} retries")
    for tname, block in rep.get("tenants", {}).items():
        print(f"  tenant {tname}: served={block['served']} "
              f"correct={block['correct']}")
    if check is not None:
        print(f"crosscheck vs virtual oracle: {check['compared']} "
              f"compared, {check['virtual_shed']} virtual-shed — OK")
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import serve_mix
    from repro.workloads import MIXES
    if args.replay:
        from repro.chaos import (read_trace, replay_trace, trace_divergence,
                                 traces_equal, write_trace)
        recorded = read_trace(args.replay)
        new, rep = replay_trace(recorded)
        if traces_equal(recorded, new):
            print(f"replay of {args.replay}: byte-identical "
                  f"({len(new['events'])} events, "
                  f"served {rep.served}/{rep.submitted}, "
                  f"correct {rep.correct})")
            if args.record:
                write_trace(args.record, new)
            return 0
        print(f"replay of {args.replay}: DIVERGED")
        print(f"  {trace_divergence(recorded, new)}")
        if args.record:
            write_trace(args.record, new)
        return 1
    if args.mix not in MIXES:
        print(f"unknown mix {args.mix!r}; known: {sorted(MIXES)}",
              file=sys.stderr)
        return 2
    if args.backend == "real":
        return _serve_real_backend(args)
    from repro.serve import DEFAULT_STALENESS
    staleness = (DEFAULT_STALENESS if args.staleness is None
                 else args.staleness)
    offload = args.offload
    if args.max_seg_hops and offload != "none":
        from repro.serve import ClockPressurePolicy, QueueDepthPolicy
        policy_cls = (ClockPressurePolicy if offload == "clock-pressure"
                      else QueueDepthPolicy)
        offload = policy_cls(max_seg_hops=args.max_seg_hops)
    tenants = None
    if args.tenants:
        from repro.serve import parse_tenants
        tenants = parse_tenants(args.tenants)
    admission = None
    if args.admission == "adaptive":
        from repro.serve import AdaptiveShed
        kw = {}
        if args.slo is not None:
            kw["slo"] = args.slo
        if args.shed_at is not None:
            kw["init_load"] = args.shed_at
        admission = AdaptiveShed(**kw)
    elif args.shed_at is not None:
        from repro.serve import ShedWhenSaturated
        admission = ShedWhenSaturated(max_node_load=args.shed_at)
    from repro.chaos.trace import DEFAULT_HORIZON
    horizon = (DEFAULT_HORIZON if args.chaos_horizon is None
               else args.chaos_horizon)
    plan = None
    if args.chaos is not None:
        from repro.chaos import random_plan
        plan = random_plan([f"node{i}" for i in range(args.nodes)],
                           args.chaos, horizon=horizon)
        for ev in plan:
            print(f"fault @ {ev.at:.6f}s: {ev.label()}")
    if args.record:
        from repro.chaos import run_recorded, write_trace
        trace, rep = run_recorded({
            "mix": args.mix, "n_nodes": args.nodes,
            "n_requests": args.requests, "seed": args.seed,
            "quantum": args.quantum, "interarrival": args.interarrival,
            "placement": args.placement, "offload": args.offload,
            "max_seg_hops": args.max_seg_hops,
            "rack_size": args.rack_size, "staleness": args.staleness,
            "isolation": args.isolation, "shed_at": args.shed_at,
            "chaos_seed": args.chaos,
            "chaos_horizon": horizon,
            "tenants": tenants.to_dict() if tenants else None,
            "arrival_rate": args.arrival_rate,
            "admission": (args.admission
                          if args.admission != "none" else None),
            "slo": args.slo,
        })
        write_trace(args.record, trace)
        print(f"recorded {len(trace['events'])} events -> {args.record}")
    else:
        rep = serve_mix(args.mix, n_nodes=args.nodes,
                        n_requests=args.requests,
                        seed=args.seed, quantum=args.quantum,
                        interarrival=args.interarrival,
                        placement=args.placement, offload=offload,
                        rack_size=args.rack_size, staleness=staleness,
                        isolation=args.isolation, admission=admission,
                        fault_plan=plan, tenants=tenants,
                        arrival_rate=args.arrival_rate)
    # Under injected faults a request may legitimately fail (bounded
    # retries exhausted); what must never happen is a wrong answer or
    # a vanished request.
    ok = (rep.correct == rep.served and rep.unserved == 0
          and (args.chaos is not None or rep.failed == 0))
    if args.json:
        print(_json.dumps(rep.to_dict(), indent=2))
        return 0 if ok else 1
    print(f"mix={rep.mix} nodes={rep.n_nodes} "
          f"served={rep.served}/{rep.submitted} correct={rep.correct}")
    print(f"makespan={rep.makespan:.4f}s  "
          f"throughput={rep.throughput:.1f} req/s  "
          f"latency p50={rep.latency_p50 * 1e3:.1f}ms "
          f"p95={rep.latency_p95 * 1e3:.1f}ms")
    s = rep.stats
    print(f"quanta={s['quanta']} handoffs={s['handoffs']} "
          f"sod_offloads={s['sod_offloads']} "
          f"(batched {s['batched_threads']}, "
          f"chain hops {s['seg_rehops']}) "
          f"completions={s['completions']}")
    print(f"transfer cache: {s['bytes_saved']} B kept off the wire, "
          f"{s['reval_hits']} object revalidation hits; "
          f"max quantum overshoot {s['max_quantum_overshoot']} instrs")
    print(f"static isolation: {s['isolated']} requests in per-request "
          f"namespaces; admission shed {s['shed']}")
    if s.get("pool_leases"):
        print(f"namespace pool: {s['pool_leases']} leases "
              f"({s['pool_reuses']} warm reuses, "
              f"{s['pool_cells_reset']} static cells re-virginized, "
              f"{s['pool_exhausted']} pool-exhausted fallbacks, "
              f"{s['pool_retired']} retired)")
    if "adaptive_threshold" in s:
        print(f"adaptive admission: threshold={s['adaptive_threshold']:.2f} "
              f"({s['adaptive_down']} down / {s['adaptive_up']} up "
              f"adjustments, {s['fair_sheds']} fair-share sheds)")
    for tname, block in rep.tenants.items():
        tl = block["latency_s"]
        print(f"  tenant {tname}: admitted={block['admitted']}/"
              f"{block['submitted']} shed={block['shed']} "
              f"done={block['done']} failed={block['failed']} "
              f"quanta={block['quanta']} "
              f"p50={tl['p50'] * 1e3:.1f}ms p95={tl['p95'] * 1e3:.1f}ms")
    print(f"tier-2 jit: {s['tier2_compiles']} compiles "
          f"({s['tier2_precompiles']} profile-driven), "
          f"{s['tier2_deopts']} deopts, "
          f"{s['tier2_guard_bails']} guard bails")
    if (args.chaos is not None or s["crashes"] or s["link_failures"]
            or s["straggles"]):
        print(f"chaos: {s['crashes']} crashes, {s['link_failures']} link "
              f"faults, {s['straggles']} stragglers; {s['retries']} "
              f"retries, {s['seg_recoveries']} segment recoveries "
              f"({s['home_requeues']} from home state), "
              f"{s['cancelled_segments']} cancelled, "
              f"{s['delivery_drops']} delivery drops, "
              f"{s['dropped_messages']} messages lost, "
              f"{rep.failed} requests failed")
    per_dec = s["decision_ops"] / s["decisions"] if s["decisions"] else 0.0
    print(f"decisions={s['decisions']} "
          f"(index ops/decision={per_dec:.1f}) "
          f"gossip_rounds={s['gossip_rounds']} "
          f"victim_vetoes={s['victim_vetoes']}")
    if args.nodes <= 16:
        for node, row in rep.per_node.items():
            print(f"  {node}: served={row['served']:<3d} "
                  f"busy={row['busy_s']:.4f}s w={row['cpu_weight']:g}")
    else:
        served = [row["served"] for row in rep.per_node.values()]
        print(f"  per-node served: min={min(served)} max={max(served)} "
              f"(use --json for the full breakdown)")
    return 0 if ok else 1


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.bytecode import disassemble
    from repro.lang import compile_source
    from repro.preprocess import preprocess_program
    with open(args.path) as fh:
        classes = preprocess_program(compile_source(fh.read()), args.build)
    target = args.target
    for cname, cf in sorted(classes.items()):
        if not cf.methods:
            continue
        for mname, code in cf.methods.items():
            qual = f"{cname}.{mname}"
            if target and target not in (cname, qual):
                continue
            print(disassemble(code))
            print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate paper tables/figures")
    p.add_argument("names", nargs="*")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("workloads", help="list registered workloads")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser("run", help="run a workload locally")
    p.add_argument("workload")
    p.add_argument("--build", default="original",
                   choices=["original", "flattened", "faulting", "checking"])
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("migrate", help="run a workload with SOD migration")
    p.add_argument("workload")
    p.set_defaults(fn=_cmd_migrate)

    p = sub.add_parser("serve", help="run the elastic cluster scheduler")
    p.add_argument("--mix", default="parallel")
    p.add_argument("--backend", default="virtual",
                   choices=["virtual", "real"],
                   help="execution backend: virtual = the deterministic "
                        "discrete-event kernel (the correctness oracle "
                        "and CI merge gate); real = wall-clock mode, "
                        "each node an OS process and every migration "
                        "actual bytes over pipes — results are held to "
                        "the virtual oracle (see --crosscheck), timings "
                        "are hardware facts")
    p.add_argument("--procs", type=int, default=None,
                   help="worker-process count for --backend real "
                        "(default min(4, usable cores); the virtual "
                        "backend sizes with --nodes as always)")
    p.add_argument("--crosscheck", action="store_true",
                   help="after a --backend real run, re-serve the same "
                        "seed on the virtual oracle and compare "
                        "request-by-request (results, correctness, "
                        "tenant attribution; timings excluded)")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--requests", type=int, default=32)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--quantum", type=int, default=2500)
    p.add_argument("--interarrival", type=float, default=0.0,
                   help="virtual seconds between admissions (0 = burst)")
    p.add_argument("--rack-size", type=int, default=4,
                   help="nodes per rack in the serve topology")
    p.add_argument("--staleness", type=float, default=None,
                   help="gossip digest staleness bound, virtual seconds "
                        "(0 = always fresh)")
    p.add_argument("--placement", default="round-robin",
                   choices=["round-robin", "front-door"])
    p.add_argument("--offload", default="queue-depth",
                   choices=["queue-depth", "clock-pressure", "none"])
    p.add_argument("--max-seg-hops", type=int, default=0,
                   help="chain hops a migrated segment may take beyond "
                        "its first offload (Fig. 1c; 0 = single-hop)")
    p.add_argument("--isolation", default="auto",
                   choices=["auto", "all", "off"],
                   help="per-request static isolation: auto = fresh "
                        "class-loader namespace for non-reentrant "
                        "programs (FFT/TSP), all = every request, "
                        "off = shared cells (reentrant-only mixes)")
    p.add_argument("--shed-at", type=float, default=None,
                   help="front-door admission: shed requests when the "
                        "gossip digest shows every rack's lightest "
                        "node at/above this weighted load (with "
                        "--admission adaptive this seeds the initial "
                        "threshold instead)")
    p.add_argument("--tenants", default=None, metavar="SPEC",
                   help="multi-tenant QoS: comma-separated "
                        "name[:key=val]* entries with keys w/weight "
                        "(fair-queueing share), p/priority (0 = shed "
                        "last), slo, pool (warm namespace pool bound), "
                        "r/rate (arrival-rate factor) — e.g. "
                        "'gold:w=3,free:w=1:p=2:r=10'; requires "
                        "--arrival-rate")
    p.add_argument("--arrival-rate", type=float, default=None,
                   help="open-loop Poisson arrivals at this rate "
                        "(requests per virtual second; per tenant it "
                        "is scaled by the tenant's rate factor) — "
                        "offered load keeps coming past saturation, "
                        "unlike --interarrival's fixed gaps")
    p.add_argument("--admission", default="none",
                   choices=["none", "static", "adaptive"],
                   help="admission control: static = shed at the fixed "
                        "--shed-at threshold; adaptive = learn the "
                        "latency/goodput knee online (AIMD on the "
                        "observed P95 vs --slo), shedding per tenant "
                        "by priority with hysteresis")
    p.add_argument("--slo", type=float, default=None,
                   help="adaptive admission's end-to-end P95 latency "
                        "target, virtual seconds (default 0.1)")
    p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                   help="inject a seeded random fault schedule (node "
                        "crashes, link failures, stragglers); same "
                        "seed = same disaster")
    p.add_argument("--chaos-horizon", type=float, default=None,
                   help="virtual seconds within which chaos faults "
                        "land (default 0.01)")
    p.add_argument("--record", metavar="PATH", default=None,
                   help="record the run's event trace (config, faults, "
                        "scheduling decisions, completions) to PATH")
    p.add_argument("--replay", metavar="PATH", default=None,
                   help="re-execute a recorded trace from its embedded "
                        "config and verify byte-identical events "
                        "(other serve flags are ignored)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("disasm", help="compile + disassemble MiniLang")
    p.add_argument("path")
    p.add_argument("target", nargs="?")
    p.add_argument("--build", default="faulting",
                   choices=["original", "flattened", "faulting", "checking"])
    p.set_defaults(fn=_cmd_disasm)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
