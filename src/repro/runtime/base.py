"""The runtime seam: one interface, two execution backends.

Everything above this layer — scheduler, policies, transfer ledgers,
WFQ, chaos — is written against four primitives: *spawn* an activity,
arm a *timer*, queue work through a *store*, and *transfer* bytes
between named nodes.  The two implementations differ in what a second
means:

* :class:`~repro.runtime.virtual.VirtualRuntime` — the discrete-event
  kernel (``sim/kernel.py``) and modeled network
  (``cluster/network.py``), byte-for-byte the pre-seam behavior.
  Deterministic, bit-reproducible, and therefore the **correctness
  oracle**: every differential/fuzz suite and every merge-gating CI
  job runs here.
* :class:`~repro.runtime.real.RealRuntime` — wall-clock mode: each
  cluster node is an OS process, transfers are real serialized bytes
  over pipes, and elapsed time is whatever the hardware delivers.
  Nondeterministic in *timing* (never in results — the cross-checker
  in :mod:`repro.runtime.crosscheck` holds it to the virtual oracle
  request by request).

``get_runtime("virtual"|"real")`` is the factory the serve CLI's
``--backend`` flag resolves through.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional

__all__ = ["Runtime", "get_runtime", "BACKENDS"]


class Runtime(ABC):
    """Execution-backend interface (spawn / timer / store / transfer).

    A runtime also knows how to serve a request mix end to end
    (:meth:`serve`): the virtual backend delegates to the existing
    ``ClusterScheduler`` stack unchanged; the real backend drives its
    multiprocess control plane.  Keeping ``serve`` on the runtime is
    what lets the CLI and benchmarks switch backends with one flag.
    """

    #: backend name ("virtual" / "real")
    name: str = ""

    # -- kernel primitives -------------------------------------------------

    @abstractmethod
    def now(self) -> float:
        """Current time in this backend's seconds (virtual or wall)."""

    @abstractmethod
    def spawn(self, fn: Callable, *args: Any) -> Any:
        """Start an activity.  Virtual: a generator becomes a kernel
        process; real: the callable runs on its own OS worker."""

    @abstractmethod
    def timer(self, delay: float, fn: Callable[[Any], None],
              arg: Any = None) -> None:
        """Arm a one-shot timer: ``fn(arg)`` after ``delay`` seconds."""

    @abstractmethod
    def store(self) -> Any:
        """A FIFO work queue usable from spawned activities."""

    @abstractmethod
    def transfer(self, src: str, dst: str, nbytes: int) -> float:
        """Account ``nbytes`` moving src→dst; returns the transfer
        latency in this backend's seconds (virtual: modeled from the
        link spec; real: measured)."""

    # -- the serving entry -------------------------------------------------

    @abstractmethod
    def serve(self, **kw: Any) -> Dict[str, Any]:
        """Serve a request mix under this backend and return a
        JSON-friendly report dict (``serve_mix`` keyword surface)."""


def get_runtime(backend: str = "virtual",
                procs: Optional[int] = None) -> Runtime:
    """Resolve a backend name to a runtime instance.

    ``procs`` is the real backend's worker-process count (ignored by
    the virtual backend, whose node count is the ``n_nodes`` serve
    argument as always).
    """
    if backend == "virtual":
        from repro.runtime.virtual import VirtualRuntime
        return VirtualRuntime()
    if backend == "real":
        from repro.runtime.real import RealRuntime
        return RealRuntime(procs=procs)
    raise ValueError(
        f"unknown backend {backend!r} (expected one of {sorted(BACKENDS)})")


#: the valid ``--backend`` values
BACKENDS = ("virtual", "real")
