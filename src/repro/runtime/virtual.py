"""Virtual-time runtime: the discrete-event kernel behind the seam.

This is a *thin adapter* — the kernel (``sim/kernel.py``) and the
modeled network (``cluster/network.py``) are untouched and every
serving run routed through here is byte-identical to the pre-seam
code path.  That is the point: the virtual backend is the correctness
oracle the real backend is cross-checked against, so it must not move
when the seam lands.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.cluster.network import LinkSpec, Network
from repro.runtime.base import Runtime
from repro.sim.kernel import Environment, Store

__all__ = ["VirtualRuntime"]


class VirtualRuntime(Runtime):
    """The existing deterministic backend, presented as a runtime.

    May be constructed over an existing (env, network) pair — the
    scheduler's — or standalone, in which case it owns fresh ones.
    """

    name = "virtual"

    def __init__(self, env: Optional[Environment] = None,
                 network: Optional[Network] = None):
        self.env = env or Environment()
        self.network = network or Network(LinkSpec())

    # -- kernel primitives -------------------------------------------------

    def now(self) -> float:
        return self.env.now

    def spawn(self, fn: Callable, *args: Any) -> Any:
        """A generator function becomes a kernel process; a plain
        callable runs as a zero-duration event at the current time."""
        gen = fn(*args)
        if hasattr(gen, "send"):
            return self.env.process(gen)
        return gen

    def timer(self, delay: float, fn: Callable[[Any], None],
              arg: Any = None) -> None:
        self.env._schedule(self.env.now + delay, fn, arg)

    def store(self) -> Store:
        return Store(self.env)

    def transfer(self, src: str, dst: str, nbytes: int) -> float:
        return self.network.transfer_time(src, dst, nbytes)

    def run(self, until: Optional[float] = None) -> None:
        """Drive the event loop (exposed for primitive-level tests)."""
        self.env.run(until)

    # -- the serving entry -------------------------------------------------

    def serve(self, **kw: Any) -> Dict[str, Any]:
        """Delegate to the unchanged ``serve_mix`` stack and return its
        report dict.  Accepts exactly the ``serve_mix`` surface."""
        from repro.serve.scheduler import serve_mix
        rep = serve_mix(**kw)
        out = rep.to_dict()
        out["backend"] = self.name
        return out
