"""Canonical byte codec for everything that crosses a process boundary.

Until this PR the "wire format" was modeled: tagged host tuples
(``("@ref", oid, node)``, ``("I", class, fields)``, ``@cached``
markers) annotated with *nominal* byte counts.  The real-parallel
backend makes the bytes real — SOD images, class-digest tokens, and
ledger markers travel over OS pipes — so the format needs an actual
serializer, and one stable enough to pin with golden fixtures
(``tests/test_wire_goldens.py``).

Design constraints:

* **Self-describing and total** over the value domain the migration
  layer produces: ``None``/bool/int/float/str/bytes and
  tuple/list/dict compositions thereof (dict keys are arbitrary
  encodable values — the statics table is keyed by ``(class, field)``
  tuples).
* **Canonical**: one value, one byte string.  Ints are
  minimal-length two's-complement; floats are exactly 8 bytes
  (IEEE-754 big-endian, so ``-0.0`` and NaN payloads round-trip);
  insertion order of dicts is preserved (both ends build tables in
  deterministic order, and order *is* part of the modeled format).
* **No host pickling** of guest-visible state: pickle's output varies
  by protocol/version and would make the golden fixtures meaningless
  (and a worker must never unpickle attacker-shaped guest values).

The grammar (1-byte tag, big-endian fixed ints):

====  =======================================================
tag   payload
====  =======================================================
``N``  None
``T``  True
``F``  False
``I``  u32 length + minimal two's-complement signed bytes
``D``  8-byte IEEE-754 double
``S``  u32 length + UTF-8 bytes
``B``  u32 length + raw bytes
``U``  u32 count + encoded items (tuple)
``L``  u32 count + encoded items (list)
``M``  u32 count + encoded (key, value) pairs (dict)
====  =======================================================
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, List, Tuple

__all__ = ["encode", "decode", "class_token", "CLASS_TOKEN_LEN",
           "WireError", "capture_to_wire", "capture_from_wire"]


class WireError(ValueError):
    """Malformed wire bytes or an unencodable value."""


_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: byte length of a content-addressed class token: 4-byte magic +
#: 20 digest bytes (matches the modeled ``CLASS_TOKEN_BYTES`` = 24 the
#: transfer ledger has always charged for repeat class shipments)
CLASS_TOKEN_LEN = 24

_TOKEN_MAGIC = b"RCT1"


def encode(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes."""
    out: List[bytes] = []
    _enc(value, out)
    return b"".join(out)


def _enc(v: Any, out: List[bytes]) -> None:
    # bool before int: bool is an int subclass and must keep its tag
    if v is None:
        out.append(b"N")
    elif v is True:
        out.append(b"T")
    elif v is False:
        out.append(b"F")
    elif isinstance(v, int):
        if v == 0:
            body = b""
        else:
            body = v.to_bytes((v.bit_length() + 8) // 8, "big", signed=True)
        out.append(b"I" + _U32.pack(len(body)) + body)
    elif isinstance(v, float):
        out.append(b"D" + _F64.pack(v))
    elif isinstance(v, str):
        body = v.encode("utf-8")
        out.append(b"S" + _U32.pack(len(body)) + body)
    elif isinstance(v, bytes):
        out.append(b"B" + _U32.pack(len(v)) + v)
    elif isinstance(v, tuple):
        out.append(b"U" + _U32.pack(len(v)))
        for item in v:
            _enc(item, out)
    elif isinstance(v, list):
        out.append(b"L" + _U32.pack(len(v)))
        for item in v:
            _enc(item, out)
    elif isinstance(v, dict):
        out.append(b"M" + _U32.pack(len(v)))
        for k, item in v.items():
            _enc(k, out)
            _enc(item, out)
    else:
        raise WireError(f"cannot wire-encode {type(v).__name__}: {v!r}")


def decode(data: bytes) -> Any:
    """Parse canonical bytes back into the value.  Rejects trailing
    garbage — a truncated or over-long frame is a protocol bug, not
    something to paper over."""
    value, pos = _dec(data, 0)
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after value")
    return value


def _dec(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise WireError("truncated wire value")
    tag = data[pos:pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"D":
        if pos + 8 > len(data):
            raise WireError("truncated float")
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag in (b"I", b"S", b"B"):
        if pos + 4 > len(data):
            raise WireError("truncated length")
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        if pos + n > len(data):
            raise WireError("truncated payload")
        body = data[pos:pos + n]
        pos += n
        if tag == b"I":
            return int.from_bytes(body, "big", signed=True), pos
        if tag == b"S":
            return body.decode("utf-8"), pos
        return body, pos
    if tag in (b"U", b"L", b"M"):
        if pos + 4 > len(data):
            raise WireError("truncated count")
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        if tag == b"M":
            d = {}
            for _ in range(n):
                k, pos = _dec(data, pos)
                v, pos = _dec(data, pos)
                d[k] = v
            return d, pos
        items = []
        for _ in range(n):
            v, pos = _dec(data, pos)
            items.append(v)
        return (tuple(items) if tag == b"U" else items), pos
    raise WireError(f"unknown wire tag {tag!r} at offset {pos - 1}")


# -- CapturedState <-> wire ----------------------------------------------------
#
# The SOD shipment unit serialized for a real process boundary (and
# pinned by the golden fixtures).  Frame rows are tagged: "F" a full
# activation record, "K" a delta-capture FrameMarker.  Statics ride as
# the migration layer encoded them — including ``("@cached", fp)``
# markers, which must survive the trip byte-exactly for the receiver's
# fingerprint check to mean anything.

_CAPTURE_MAGIC = "RCS1"


def capture_to_wire(state: Any) -> bytes:
    """Serialize a :class:`repro.migration.state.CapturedState` (frames
    may include :class:`FrameMarker` rows from a delta capture)."""
    from repro.migration.state import CapturedFrame, FrameMarker
    frames: List[Any] = []
    for f in state.frames:
        if isinstance(f, FrameMarker):
            frames.append(("K", f.fp))
        elif isinstance(f, CapturedFrame):
            frames.append(("F", f.class_name, f.method_name, f.pc,
                           f.raw_pc, list(f.locals)))
        else:
            raise WireError(f"not a capturable frame: {f!r}")
    return encode((_CAPTURE_MAGIC, frames, dict(state.statics),
                   list(state.class_names), state.home_node,
                   state.return_to, state.thread_name, state.namespace,
                   state.cached_statics, state.cached_frames,
                   state.saved_bytes))


def capture_from_wire(data: bytes) -> Any:
    """Inverse of :func:`capture_to_wire`."""
    from repro.migration.state import (CapturedFrame, CapturedState,
                                       FrameMarker)
    v = decode(data)
    if not (isinstance(v, tuple) and len(v) == 11
            and v[0] == _CAPTURE_MAGIC):
        raise WireError("not a wire-encoded CapturedState")
    (_magic, frames_enc, statics, class_names, home_node, return_to,
     thread_name, namespace, cached_statics, cached_frames,
     saved_bytes) = v
    frames: List[Any] = []
    for row in frames_enc:
        if row[0] == "K":
            frames.append(FrameMarker(fp=row[1]))
        elif row[0] == "F":
            frames.append(CapturedFrame(
                class_name=row[1], method_name=row[2], pc=row[3],
                raw_pc=row[4], locals=list(row[5])))
        else:
            raise WireError(f"unknown frame row tag {row[0]!r}")
    return CapturedState(
        frames=frames, statics=statics, class_names=list(class_names),
        home_node=home_node, return_to=return_to,
        thread_name=thread_name, namespace=namespace,
        cached_statics=cached_statics, cached_frames=cached_frames,
        saved_bytes=saved_bytes)


def class_token(name: str, payload: bytes) -> bytes:
    """Content-addressed class-shipment token: what a repeat offload
    ships instead of the class file when the destination's classpath
    already holds it (the ledger's ``CLASS_TOKEN_BYTES`` = 24 made
    real).  ``payload`` is any canonical byte rendering of the class
    definition; both sides must derive it the same way — the receiver
    recomputes the token over its own copy and refuses a mismatch.
    """
    digest = hashlib.sha256(
        _TOKEN_MAGIC + _U32.pack(len(name)) + name.encode("utf-8")
        + payload).digest()
    return _TOKEN_MAGIC + digest[:CLASS_TOKEN_LEN - len(_TOKEN_MAGIC)]
