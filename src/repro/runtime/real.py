"""Real-parallel execution backend: every node is an OS process.

Wall-clock mode for the serving stack.  The parent process is the
control plane (placement, work stealing, crash recovery, accounting);
each worker process owns one VM — its own ``Machine`` over a locally
rebuilt classpath — and serves requests in preemptible quanta exactly
like a virtual node does.  Everything that crosses a process boundary
crosses as canonical :mod:`repro.runtime.wire` bytes over OS pipes:

* **request dispatch** — (rid, program, args) rows;
* **SOD images** — when the control plane steals a *running* request
  from a loaded worker for an idle one, the victim captures the thread
  at a quantum boundary into an eager self-contained image (frames +
  operand stacks + reachable object graph + namespace statics, the
  G-JavaMPI-style whole-segment encoding) and the image bytes are
  restored on the thief;
* **class-digest tokens** — an image never carries class files; it
  carries :func:`repro.runtime.wire.class_token` digests, and the
  receiver verifies them against its own deterministically-built
  classpath (the transfer ledger's "ship once, then tokens" behavior,
  with "once" collapsed to zero because every worker builds the same
  classpath from the mix name);
* **ledger deltas** — statics still holding their class-file defaults
  ride as ``("@cached", fingerprint)`` markers; the receiver verifies
  the fingerprint against its own freshly-linked cells and keeps the
  identical copy.

Determinism contract: requests are pure functions of their spec, so
*results* are reproducible and cross-checked request-by-request
against the same-seed virtual-time run
(:mod:`repro.runtime.crosscheck`); *timings and placement* are
wall-clock facts and excluded.  The virtual backend remains the
correctness oracle and the merge gate — this backend exists to turn
simulated speedup into hardware speedup.

Crash semantics mirror the chaos layer's ``crash_node``: a worker
process dying (detected via its sentinel, never by hanging on a pipe)
requeues everything it still owed onto the survivors, counted under
``crashes``/``retries`` like a chaos recovery.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import deque
from multiprocessing import connection, get_context
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime import wire
from repro.runtime.base import Runtime

__all__ = ["RealRuntime", "serve_real", "available_cores",
           "REAL_QUANTUM"]

#: preemption budget per quantum in the real backend, in guest
#: instructions.  Bigger than the virtual default (2500): between
#: quanta a worker makes a real ``poll()`` syscall to look for control
#: messages, so the budget trades steal latency against poll overhead.
REAL_QUANTUM = 100_000

#: namespace used only to read pristine class-file static defaults
_DEFAULTS_NS = "___defaults"


def available_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware —
    a cgroup-limited container reports what it can truly use)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        return os.cpu_count() or 1


# -- wire helpers shared by both ends ------------------------------------------


def _classfile_payload(cf) -> bytes:
    """Canonical byte rendering of one class definition, the input to
    :func:`repro.runtime.wire.class_token`.  Derived only from compiled
    structure, so two processes building the same mix get identical
    tokens."""
    methods = []
    for mname in sorted(cf.methods):
        code = cf.methods[mname]
        methods.append((mname, code.nparams, code.max_locals,
                        code.is_static,
                        [(i.op, i.a, i.b) for i in code.instrs],
                        tuple(code.line_table), repr(code.exc_table)))
    fields = [(f.name, f.is_static, f.type_name) for f in cf.fields]
    return wire.encode((cf.name, cf.superclass, fields, methods))


def _send(conn_, msg: Any) -> int:
    """Ship one control message as wire bytes; returns the byte count
    (the real-backend analogue of ``Network.bytes_moved``)."""
    data = wire.encode(msg)
    conn_.send_bytes(data)
    return len(data)


def _recv(conn_) -> Any:
    return wire.decode(conn_.recv_bytes())


def _encode_result(value: Any) -> Any:
    """Guest results are primitives for every registry program; anything
    exotic degrades to a tagged repr so the pipe never breaks."""
    try:
        wire.encode(value)
        return value
    except wire.WireError:
        return ("@repr", repr(value))


# -- worker process ------------------------------------------------------------


class _Worker:
    """One cluster node: a VM over a locally built classpath, serving a
    local FIFO of requests in quanta and answering control messages."""

    def __init__(self, conn_, name: str, mix: str, quantum: int):
        from repro.vm.machine import Machine
        from repro.workloads.mixes import MIXES, serve_classpath

        self.conn = conn_
        self.name = name
        self.quantum = quantum
        self.classes = serve_classpath(MIXES[mix].programs())
        self.machine = Machine(self.classes)
        #: deterministic token per class — what migrations verify
        self.tokens: Dict[str, bytes] = {
            cname: wire.class_token(cname, _classfile_payload(cf))
            for cname, cf in self.classes.items()}
        self.queue: deque = deque()   # (rid, program, args)
        self.running: Optional[Tuple[int, Any]] = None  # (rid, thread)
        self.instr_mark = 0
        self._default_fps: Dict[Tuple[str, str], int] = {}

    # -- statics delta (ledger markers across the process boundary) -----

    def _default_fp(self, cname: str, fname: str) -> Optional[int]:
        """Fingerprint of a static's pristine class-file default (the
        value a fresh namespace cell holds right after linking)."""
        from repro.migration.state import fingerprint
        key = (cname, fname)
        if key not in self._default_fps:
            cls = self.machine.namespace(_DEFAULTS_NS).load(cname)
            home = cls.find_static_home(fname)
            v = home.statics.get(fname)
            self._default_fps[key] = (
                fingerprint(v)
                if isinstance(v, (int, float, str, bool, type(None)))
                else None)
        return self._default_fps[key]

    # -- eager image capture/restore ------------------------------------

    def capture_image(self, rid: int, thread) -> bytes:
        """Whole-segment eager capture at a quantum boundary: frames +
        operand stacks + reachable graph + namespace statics, with
        unmodified statics elided as ``@cached`` fingerprint markers."""
        from repro.migration.state import GraphEncoder, fingerprint

        enc = GraphEncoder(this_node="", eager=True)
        frames = [(f.code.class_name, f.code.name, f.pc,
                   [enc.encode(v) for v in f.locals],
                   [enc.encode(v) for v in f.stack])
                  for f in thread.frames]
        statics: Dict[Tuple[str, str], Any] = {}
        elided = 0
        elided_bytes = 0
        ns_loader = self.machine.namespace(thread.namespace)
        for cls in ns_loader.loaded_classes().values():
            for fname, v in cls.statics.items():
                if isinstance(v, (int, float, str, bool, type(None))):
                    fp = fingerprint(v)
                    if fp == self._default_fp(cls.name, fname):
                        full = len(wire.encode(v))
                        statics[(cls.name, fname)] = ("@cached", fp)
                        elided += 1
                        elided_bytes += max(
                            0, full - len(wire.encode(("@cached", fp))))
                        continue
                statics[(cls.name, fname)] = enc.encode(v)
        class_names = sorted({f[0] for f in frames}
                             | {c for (c, _f) in statics})
        image = {
            "rid": rid,
            "thread": thread.name,
            "frames": frames,
            "graph": enc.graph,
            "statics": statics,
            "classes": [(c, self.tokens[c]) for c in class_names],
            "elided": elided,
            "elided_bytes": elided_bytes,
        }
        return wire.encode(image)

    def restore_image(self, data: bytes):
        """Rebuild a shipped thread on this VM, in a fresh namespace:
        verify every class token against the local classpath, decode
        the graph, apply statics (markers verified against pristine
        cells), then rebuild frames with locals/stacks/pc."""
        from repro.errors import MigrationError
        from repro.migration.state import GraphDecoder, fingerprint
        from repro.vm.frames import Frame, ThreadState

        image = wire.decode(data)
        rid = image["rid"]
        for cname, token in image["classes"]:
            local = self.tokens.get(cname)
            if local != token:
                raise MigrationError(
                    f"class token mismatch for {cname} on {self.name}: "
                    f"classpaths diverged")
        ns = f"mig{rid}@{self.name}"
        loader = self.machine.namespace(ns)
        dec = GraphDecoder(self.machine.heap, loader, this_node="",
                           graph=image["graph"])
        for (cname, fname), e in image["statics"].items():
            home = loader.load(cname).find_static_home(fname)
            if isinstance(e, tuple) and len(e) == 2 and e[0] == "@cached":
                current = home.statics.get(fname)
                if fingerprint(current) != e[1]:
                    raise MigrationError(
                        f"static marker mismatch for {cname}.{fname} on "
                        f"{self.name}: default cell diverged")
                continue  # keep the identical freshly-linked default
            home.statics[fname] = dec.decode(e)
        thread = ThreadState(image["thread"], namespace=ns)
        for cname, mname, pc, locs, stk in image["frames"]:
            code = loader.load(cname).find_method(mname)
            if code is None:
                raise MigrationError(f"no method {cname}.{mname}")
            nf = Frame(code)
            nf.locals = [dec.decode(e) for e in locs]
            nf.stack = [dec.decode(e) for e in stk]
            nf.pc = pc
            thread.frames.append(nf)
        return rid, thread

    # -- main loop -------------------------------------------------------

    def _start_next(self) -> None:
        rid, program, args = self.queue.popleft()
        from repro.workloads.mixes import RequestSpec
        spec = RequestSpec(program, tuple(args))
        thread = self.machine.spawn(spec.main[0], spec.main[1],
                                    list(spec.args),
                                    thread_name=f"req{rid}",
                                    namespace=f"rq{rid}@{self.name}")
        self.instr_mark = self.machine.instr_count
        self.running = (rid, thread)

    def _finish(self, rid: int, thread) -> None:
        instrs = self.machine.instr_count - self.instr_mark
        if thread.uncaught is not None:
            _send(self.conn, ("fail", rid,
                              getattr(thread.uncaught, "class_name",
                                      "GuestError"), instrs))
        else:
            _send(self.conn, ("done", rid, _encode_result(thread.result),
                              instrs))
        self.running = None

    def _handle(self, msg: Any) -> bool:
        """One control message; returns False on ``stop``."""
        kind = msg[0]
        if kind == "run":
            self.queue.extend((rid, prog, tuple(args))
                              for rid, prog, args in msg[1])
        elif kind == "giveback":
            k = min(msg[1], len(self.queue))
            rows = [self.queue.pop() for _ in range(k)]  # tail first
            _send(self.conn, ("gaveback",
                              [(rid, prog, list(args))
                               for rid, prog, args in reversed(rows)]))
        elif kind == "capture":
            rid = msg[1]
            if self.running is not None and self.running[0] == rid:
                _rid, thread = self.running
                image = self.capture_image(rid, thread)
                self.running = None
                _send(self.conn, ("image", rid, image))
            else:
                _send(self.conn, ("nocapture", rid))
        elif kind == "restore":
            rid, thread = self.restore_image(msg[1])
            # stolen work runs ahead of the local queue
            self.instr_mark = self.machine.instr_count
            self.running = (rid, thread)
        elif kind == "stop":
            return False
        return True

    def loop(self) -> None:
        idle_sent = False
        while True:
            # Drain any pending control traffic without blocking.
            while self.conn.poll(0):
                if not self._handle(_recv(self.conn)):
                    return
            if self.running is None and self.queue:
                self._start_next()
                idle_sent = False
            if self.running is not None:
                rid, thread = self.running
                status = self.machine.run(thread, quantum=self.quantum)
                if status == "finished":
                    self._finish(rid, thread)
                continue
            if not idle_sent:
                _send(self.conn, ("idle",))
                idle_sent = True
            # Nothing to do: block until the control plane speaks.
            if not self._handle(_recv(self.conn)):
                return


def _worker_main(conn_, name: str, mix: str, quantum: int) -> None:
    try:
        _Worker(conn_, name, mix, quantum).loop()
    except (EOFError, OSError):  # parent went away
        pass
    finally:
        try:
            conn_.close()
        except OSError:
            pass


# -- control plane -------------------------------------------------------------


class _WorkerHandle:
    def __init__(self, proc, conn_, name: str):
        self.proc = proc
        self.conn = conn_
        self.name = name
        #: parent-side model of what the worker still owes, dispatch
        #: order (head ≈ running): rid -> (program, args, tenant)
        self.owed: "dict[int, Tuple[str, tuple, Optional[str]]]" = {}
        self.idle = False
        self.alive = True
        self.capture_pending = False


def serve_real(mix: str = "paper", n_requests: int = 32, seed: int = 7,
               procs: int = 2, quantum: int = REAL_QUANTUM,
               interarrival: float = 0.0,
               tenants: Optional[Any] = None,
               arrival_rate: Optional[float] = None,
               steal: bool = True,
               fault_plan: Optional[Dict[str, int]] = None,
               deadline_s: float = 600.0,
               runtime: Optional["RealRuntime"] = None) -> Dict[str, Any]:
    """Serve ``n_requests`` of ``mix`` across ``procs`` worker
    processes and return a report dict.

    The request stream is the *same* one the virtual backend serves:
    ``LoadGenerator.schedule()`` is a pure function of (mix,
    n_requests, seed, tenants), so row *i* here is request *i* there —
    the alignment the cross-checker relies on.  Arrival times are
    ignored (wall-clock pacing of virtual arrivals is meaningless;
    the stream is served as fast as the hardware allows).

    ``fault_plan`` (test hook, chaos vocabulary): ``{"kill_worker": i,
    "after_done": k}`` SIGKILLs worker ``i`` once ``k`` requests have
    completed; its owed requests requeue onto the survivors exactly
    like a chaos ``crash_node`` recovery.  ``deadline_s`` bounds the
    whole run — a wedged worker surfaces as a loud error with the
    in-flight rids listed, never as a hang.
    """
    from repro.serve.loadgen import LoadGenerator
    from repro.workloads.mixes import MIXES, expected_request_result

    if procs < 1:
        raise ValueError(f"need at least one worker process, got {procs}")
    rt = runtime or RealRuntime(procs=procs)
    load = LoadGenerator(MIXES[mix], n_requests, seed=seed,
                         interarrival=interarrival, tenants=tenants,
                         arrival_rate=arrival_rate)
    rows = [(rid, tenant, spec)
            for rid, (_when, tenant, spec) in enumerate(load.schedule())]

    ctx = get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    workers: List[_WorkerHandle] = []
    for i in range(procs):
        parent_conn, child_conn = ctx.Pipe()
        name = f"proc{i}"
        proc = ctx.Process(target=_worker_main,
                           args=(child_conn, name, mix, quantum),
                           name=f"repro-{name}", daemon=True)
        proc.start()
        child_conn.close()
        workers.append(_WorkerHandle(proc, parent_conn, name))

    stats = {"migrations": 0, "steals": 0, "crashes": 0, "retries": 0,
             "image_bytes": 0, "token_bytes": 0, "statics_elided": 0,
             "bytes_saved": 0, "control_bytes": 0, "instrs": 0}
    results: Dict[int, Dict[str, Any]] = {}
    killed = False
    t0 = time.perf_counter()

    def send(w: _WorkerHandle, msg: Any) -> None:
        n = _send(w.conn, msg)
        stats["control_bytes"] += n
        rt.transfer("control", w.name, n)

    def dispatch(w: _WorkerHandle,
                 batch: List[Tuple[int, Optional[str], Any]]) -> None:
        if not batch:
            return
        for rid, tenant, spec in batch:
            w.owed[rid] = (spec.program, tuple(spec.args), tenant)
        send(w, ("run", [(rid, spec.program, list(spec.args))
                         for rid, _tenant, spec in batch]))
        w.idle = False

    # Initial placement: equal-weight round robin in schedule order —
    # the virtual default placement, minus load feedback (which the
    # stealing path supplies at run time instead).
    shards: List[List[Tuple[int, Optional[str], Any]]] = \
        [[] for _ in range(procs)]
    for i, row in enumerate(rows):
        shards[i % procs].append(row)
    for w, shard in zip(workers, shards):
        dispatch(w, shard)

    spec_of = {rid: (tenant, spec) for rid, tenant, spec in rows}

    def record_done(rid: int, result: Any, state: str, error: Optional[str],
                    instrs: int, worker: str) -> None:
        tenant, spec = spec_of[rid]
        if isinstance(result, tuple) and len(result) == 2 \
                and result[0] == "@repr":
            ok = result[1] == repr(expected_request_result(spec))
        else:
            ok = (state == "done"
                  and result == expected_request_result(spec))
        prev = results.get(rid)
        results[rid] = {
            "rid": rid, "program": spec.program,
            "args": list(spec.args), "tenant": tenant,
            "result": result, "state": state, "error": error,
            "correct": ok, "worker": worker, "instrs": instrs,
            "migrated": bool(prev and prev.get("migrated")),
            "retries": (prev["retries"] if prev else 0),
        }
        stats["instrs"] += instrs

    def requeue(dead: _WorkerHandle) -> None:
        """Chaos ``crash_node`` recovery: everything the dead worker
        still owed re-executes from scratch on the survivors."""
        owed = list(dead.owed.items())
        dead.owed.clear()
        if not owed:
            return
        stats["retries"] += len(owed)
        live = [w for w in workers if w.alive]
        if not live:
            raise RuntimeError(
                "all workers dead with requests outstanding")
        for i, (rid, (program, args, tenant)) in enumerate(owed):
            mark = results.get(rid)
            results[rid] = {"retries": (mark["retries"] + 1 if mark
                                        else 1), "migrated": False}
            _tenant, spec = spec_of[rid]
            dispatch(live[i % len(live)], [(rid, tenant, spec)])

    def handle(w: _WorkerHandle, msg: Any) -> None:
        kind = msg[0]
        if kind == "done":
            _k, rid, result, instrs = msg
            w.owed.pop(rid, None)
            record_done(rid, result, "done", None, instrs, w.name)
        elif kind == "fail":
            _k, rid, error, instrs = msg
            w.owed.pop(rid, None)
            record_done(rid, None, "failed", error, instrs, w.name)
        elif kind == "idle":
            w.idle = True
        elif kind == "gaveback":
            w.capture_pending = False
            rows_back = [(rid, prog, tuple(args))
                         for rid, prog, args in msg[1]]
            for rid, _prog, _args in rows_back:
                w.owed.pop(rid, None)
            if rows_back:
                # No idle thief anymore → hand the rows straight back
                # to the victim (never drop admitted work).
                thief = _pick_idle() or w
                if thief is not w:
                    stats["steals"] += len(rows_back)
                dispatch(thief, [(rid, spec_of[rid][0], spec_of[rid][1])
                                 for rid, _p, _a in rows_back])
        elif kind == "image":
            _k, rid, image = msg
            w.capture_pending = False
            w.owed.pop(rid, None)
            meta = wire.decode(image)
            thief = _pick_idle()
            if thief is None:
                thief = w  # nobody idle anymore: bounce it back
            tenant, spec = spec_of[rid]
            thief.owed[rid] = (spec.program, tuple(spec.args), tenant)
            send(thief, ("restore", image))
            thief.idle = False
            stats["migrations"] += 1
            stats["image_bytes"] += len(image)
            stats["token_bytes"] += sum(len(t) for _c, t in meta["classes"])
            stats["statics_elided"] += meta["elided"]
            stats["bytes_saved"] += meta["elided_bytes"]
            mark = results.get(rid) or {"retries": 0}
            results[rid] = {**mark, "migrated": True}
        elif kind == "nocapture":
            w.capture_pending = False

    def _pick_idle() -> Optional[_WorkerHandle]:
        for w in workers:
            if w.alive and w.idle and not w.owed:
                return w
        return None

    def rebalance() -> None:
        """An idle worker pulls work from the most-loaded one: queued
        rows if the victim has a backlog, else (``steal``) the running
        thread itself as a SOD image."""
        thief = _pick_idle()
        if thief is None:
            return
        victims = [w for w in workers
                   if w.alive and w is not thief and w.owed
                   and not w.capture_pending]
        if not victims:
            return
        victim = max(victims, key=lambda w: len(w.owed))
        if len(victim.owed) > 1:
            victim.capture_pending = True
            send(victim, ("giveback", max(1, len(victim.owed) // 2)))
        elif steal:
            rid = next(iter(victim.owed))
            victim.capture_pending = True
            send(victim, ("capture", rid))

    # -- event loop ------------------------------------------------------
    deadline = t0 + deadline_s
    while len(results) < n_requests or any(
            r.get("state") is None for r in results.values()):
        done_count = sum(1 for r in results.values() if r.get("state"))
        if done_count >= n_requests:
            break
        if (fault_plan and not killed
                and done_count >= fault_plan.get("after_done", 0)):
            victim = workers[fault_plan.get("kill_worker", 0) % procs]
            if victim.alive:
                killed = True
                os.kill(victim.proc.pid, signal.SIGKILL)
        waitables: List[Any] = []
        for w in workers:
            if w.alive:
                waitables.append(w.conn)
                waitables.append(w.proc.sentinel)
        if not waitables:
            raise RuntimeError("all workers dead with requests outstanding")
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            in_flight = sorted(rid for w in workers for rid in w.owed)
            for w in workers:
                if w.alive:
                    w.proc.terminate()
            raise RuntimeError(
                f"real backend deadline ({deadline_s}s) exceeded with "
                f"requests in flight: {in_flight}")
        ready = connection.wait(waitables, timeout=min(remaining, 0.25))
        for obj in ready:
            w = next((w for w in workers
                      if obj in (w.conn, w.proc.sentinel)), None)
            if w is None:
                continue
            if obj is w.proc.sentinel:
                if w.alive:
                    w.alive = False
                    stats["crashes"] += 1
                    try:
                        w.conn.close()
                    except OSError:
                        pass
                    requeue(w)
                continue
            try:
                while w.conn.poll(0):
                    handle(w, _recv(w.conn))
            except (EOFError, OSError):
                pass  # the sentinel path owns crash handling
        rebalance()

    wall = time.perf_counter() - t0

    for w in workers:
        if w.alive:
            try:
                send(w, ("stop",))
            except (BrokenPipeError, OSError):
                pass
    for w in workers:
        w.proc.join(timeout=5.0)
        if w.proc.is_alive():  # pragma: no cover - defensive
            w.proc.terminate()
            w.proc.join(timeout=5.0)
        try:
            w.conn.close()
        except OSError:
            pass

    rows_out = [results[rid] for rid in sorted(results)]
    served = [r for r in rows_out if r["state"] == "done"]
    failed = [r for r in rows_out if r["state"] == "failed"]
    per_tenant: Dict[str, Dict[str, int]] = {}
    for r in rows_out:
        if r["tenant"] is not None:
            t = per_tenant.setdefault(r["tenant"],
                                      {"served": 0, "correct": 0})
            if r["state"] == "done":
                t["served"] += 1
                t["correct"] += int(r["correct"])
    report: Dict[str, Any] = {
        "backend": "real", "mix": mix, "seed": seed, "procs": procs,
        "quantum": quantum, "submitted": n_requests,
        "served": len(served), "failed": len(failed),
        "unserved": n_requests - len(rows_out),
        "correct": sum(1 for r in served if r["correct"]),
        "requests": rows_out,
        "sched": stats,
        "wall": {
            "seconds": round(wall, 4),
            "throughput_rps": round(len(served) / wall, 2) if wall else 0.0,
            "cores": available_cores(),
        },
    }
    if per_tenant:
        report["tenants"] = per_tenant
    return report


class RealRuntime(Runtime):
    """Wall-clock runtime over OS processes (see module docstring)."""

    name = "real"

    def __init__(self, procs: Optional[int] = None):
        self.procs = procs or min(4, available_cores())
        #: (src, dst) -> bytes actually shipped over pipes
        self.bytes_moved: Dict[Tuple[str, str], int] = {}
        self._timers: List[Any] = []

    # -- kernel primitives -------------------------------------------------

    def now(self) -> float:
        return time.monotonic()

    def spawn(self, fn: Callable, *args: Any) -> Any:
        import threading
        t = threading.Thread(target=fn, args=args, daemon=True)
        t.start()
        return t

    def timer(self, delay: float, fn: Callable[[Any], None],
              arg: Any = None) -> None:
        import threading
        t = threading.Timer(delay, fn, args=(arg,))
        t.daemon = True
        t.start()
        self._timers.append(t)

    def store(self) -> Any:
        import queue
        return queue.SimpleQueue()

    def transfer(self, src: str, dst: str, nbytes: int) -> float:
        key = (src, dst)
        self.bytes_moved[key] = self.bytes_moved.get(key, 0) + nbytes
        return 0.0

    # -- the serving entry -------------------------------------------------

    def serve(self, **kw: Any) -> Dict[str, Any]:
        """Accepts the ``serve_mix`` surface; virtual-only knobs that
        cannot apply to wall-clock execution (placement/offload policy
        objects, cost models, chaos traces) are rejected loudly rather
        than silently ignored."""
        unsupported = {k: v for k, v in kw.items()
                       if k in ("fault_plan", "tracer", "cost", "admission")
                       and v is not None}
        if unsupported:
            raise ValueError(
                f"real backend does not support {sorted(unsupported)}; "
                f"chaos/admission scenarios run on the virtual oracle")
        allowed = ("mix", "n_requests", "seed", "interarrival",
                   "tenants", "arrival_rate")
        call = {k: v for k, v in kw.items() if k in allowed}
        call.setdefault("quantum", REAL_QUANTUM)
        return serve_real(procs=self.procs, runtime=self, **call)
