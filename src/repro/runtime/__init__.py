"""Execution backends behind one seam (see :mod:`repro.runtime.base`).

``virtual`` — the discrete-event kernel, deterministic, the
correctness oracle and CI merge gate.  ``real`` — multiprocess
wall-clock mode, every cluster node an OS process, every migration
actual serialized bytes over pipes, cross-checked request-by-request
against the oracle (:mod:`repro.runtime.crosscheck`).
"""

from repro.runtime.base import BACKENDS, Runtime, get_runtime

__all__ = ["BACKENDS", "Runtime", "get_runtime"]
