"""Cross-checker: hold a real-backend run to the virtual-time oracle.

The request stream is a pure function of (mix, n_requests, seed,
tenants) — ``LoadGenerator.schedule()`` produces the identical row
list in both backends — and every request is a pure function of its
spec.  So a wall-clock run and a same-seed virtual run must agree
*request by request* on everything except timing and placement:

* the result value (or failure) of request *i*,
* the correctness flag (result == the standalone-machine oracle),
* the tenant the request was attributed to.

Virtual-only outcomes are mapped, not ignored: a request the virtual
scheduler *shed* under overload has no real-backend counterpart (the
real backend serves the whole stream — wall-clock mode has no modeled
admission horizon), so shed rows only require that the real backend
*served* them correctly; a virtual ``failed`` row must fail on the
real backend too (guest exceptions are deterministic).

What is deliberately **excluded**: latencies, completion order, node
assignment, migration counts — those are the quantities the two
backends are *supposed* to disagree on.  The virtual backend stays
the merge gate; this checker is what lets the real backend claim its
speedups are of the same computation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["crosscheck_real_vs_virtual", "virtual_request_rows",
           "CrosscheckError"]


class CrosscheckError(AssertionError):
    """A real-backend run diverged from the virtual-time oracle."""


def virtual_request_rows(mix: str = "paper", n_requests: int = 32,
                         seed: int = 7, **serve_kw: Any
                         ) -> List[Dict[str, Any]]:
    """Run the virtual oracle and return its per-request rows in
    submission order (``sched.requests`` is appended to in ``submit``
    order, which is ``schedule()`` order — the same order the real
    backend numbers its rids in)."""
    from repro.serve.scheduler import build_serving

    sched, load = build_serving(mix=mix, n_requests=n_requests, seed=seed,
                                **serve_kw)
    sched.serve(load)
    rows = []
    # ``sched.requests`` also holds offload *segments* (interleaved
    # rids); position among the kind=="request" entries — submission
    # order — is what aligns with the real backend's rid numbering.
    for r in (r for r in sched.requests if r.kind == "request"):
        rows.append({
            "rid": r.rid,
            "program": r.spec.program,
            "args": list(r.spec.args),
            "tenant": r.tenant,
            "state": r.state,
            "result": r.result,
        })
    return rows


def _real_result(row: Dict[str, Any]) -> Any:
    v = row["result"]
    if isinstance(v, tuple) and len(v) == 2 and v[0] == "@repr":
        return v  # compared via repr below
    return v


def crosscheck_real_vs_virtual(real_report: Dict[str, Any],
                               virtual_rows: Optional[List[Dict[str, Any]]]
                               = None,
                               **virtual_kw: Any) -> Dict[str, Any]:
    """Compare a :func:`repro.runtime.real.serve_real` report against
    the same-seed virtual run, request by request.

    Either pass precomputed ``virtual_rows`` or let this run the
    oracle with ``virtual_kw`` (defaults taken from the real report's
    mix/seed/count).  Returns a summary dict on success; raises
    :class:`CrosscheckError` listing every divergent request on
    failure.
    """
    from repro.workloads.mixes import expected_request_result, RequestSpec

    if virtual_rows is None:
        virtual_kw.setdefault("mix", real_report["mix"])
        virtual_kw.setdefault("seed", real_report["seed"])
        virtual_kw.setdefault("n_requests", real_report["submitted"])
        virtual_rows = virtual_request_rows(**virtual_kw)

    real_rows = {r["rid"]: r for r in real_report["requests"]}
    problems: List[str] = []
    compared = 0
    shed = 0
    for i, v in enumerate(virtual_rows):
        r = real_rows.get(i)
        if r is None:
            problems.append(f"req {i}: missing from real run")
            continue
        if (r["program"], tuple(r["args"])) != (v["program"],
                                                tuple(v["args"])):
            problems.append(
                f"req {i}: stream diverged — real {r['program']}"
                f"{tuple(r['args'])} vs virtual {v['program']}"
                f"{tuple(v['args'])} (seeding bug)")
            continue
        if r["tenant"] != v["tenant"]:
            problems.append(
                f"req {i}: tenant attribution {r['tenant']!r} vs "
                f"virtual {v['tenant']!r}")
        if v["state"] == "shed":
            # No modeled admission horizon in wall-clock mode: the
            # real backend must have served it, and correctly.
            shed += 1
            if r["state"] != "done" or not r["correct"]:
                problems.append(
                    f"req {i}: virtual shed it, real must still serve "
                    f"it correctly (got state={r['state']!r})")
            continue
        if v["state"] == "failed":
            if r["state"] != "failed":
                problems.append(
                    f"req {i}: deterministic guest failure on virtual "
                    f"but real state={r['state']!r}")
            compared += 1
            continue
        compared += 1
        if r["state"] != "done":
            problems.append(
                f"req {i}: virtual done, real state={r['state']!r} "
                f"(error={r.get('error')!r})")
            continue
        rr = _real_result(r)
        if isinstance(rr, tuple) and len(rr) == 2 and rr[0] == "@repr":
            if rr[1] != repr(v["result"]):
                problems.append(
                    f"req {i}: result repr {rr[1]!r} vs virtual "
                    f"{v['result']!r}")
        elif rr != v["result"]:
            problems.append(
                f"req {i}: result {rr!r} vs virtual {v['result']!r}")
        spec = RequestSpec(v["program"], tuple(v["args"]))
        want = r["state"] == "done" and \
            _real_result(r) == expected_request_result(spec)
        if bool(r["correct"]) != bool(want):
            problems.append(
                f"req {i}: correctness flag {r['correct']!r} "
                f"inconsistent with the oracle")
    if len(real_rows) > len(virtual_rows):
        extra = sorted(set(real_rows) - set(range(len(virtual_rows))))
        problems.append(f"real run has extra rids {extra}")
    if problems:
        raise CrosscheckError(
            f"real backend diverged from the virtual oracle on "
            f"{len(problems)} point(s):\n  " + "\n  ".join(problems))
    return {"requests": len(virtual_rows), "compared": compared,
            "virtual_shed": shed, "ok": True}
