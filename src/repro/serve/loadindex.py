"""Incrementally-maintained cluster load indexes.

The scheduler's hot path asks two questions thousands of times per
serving run: *how loaded is this node?* and *who is the best
underloaded target?*.  The seed implementation answered the second by
scanning every node and recomputing each weighted load from queue
state — O(n) per decision, which melts once the cluster reaches
dozens of nodes serving thousands of requests.  This module keeps the
answers in incrementally-maintained structures so both are O(1) /
O(log n):

* **event-driven counters** — every enqueue, dequeue, run-slot
  change, and delivery-in-flight bumps a per-node runnable count by
  ±1; weighted load is ``count / cpu_weight``, never recomputed from
  scratch;
* **per-rack lazy-deletion heaps** — each rack keeps a min-heap of
  ``(load, node)`` entries; an update pushes a fresh entry and the
  old one dies lazily (an entry is valid iff its load still matches
  the node's current load), so the rack minimum is an O(log n)
  amortized pop-skip;
* **a bounded-staleness cross-rack summary** — the gossip signal.  A
  node always has fresh knowledge of its *own* rack (one switch hop
  away), but consults a cached per-rack digest for the rest of the
  cluster, refreshed at most every ``staleness`` virtual seconds.
  Remote racks may therefore look up to ``staleness`` out of date —
  exactly the bounded error a periodic gossip/heartbeat protocol
  gives a real cluster — while the common case pays one rack-heap
  peek instead of polling every peer.

Determinism: all tie-breaking is by ``(load, name)`` within a rack
and ``(load, rack, name)`` across racks, and staleness is measured in
*virtual* time, so runs replay bit-identically.

:func:`recompute_load` / :func:`naive_pick` are the from-scratch
reference implementations of the same decision rule; the property
tests drive both through randomized schedules and require exact
agreement (with ``staleness=0``) — that is the proof the incremental
state never drifts.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError

#: default gossip bound, virtual seconds: requests are milliseconds of
#: guest compute, so a 1 ms digest is at most ~one request stale while
#: cutting cross-rack refreshes to one per gossip interval
DEFAULT_STALENESS = 1e-3


class LoadIndex:
    """O(log n) weighted-load index over a cluster's nodes."""

    def __init__(self, cluster, staleness: float = DEFAULT_STALENESS):
        if staleness < 0:
            raise ClusterError(f"negative staleness bound {staleness}")
        names = list(cluster.names())
        self.staleness = staleness
        self.weights: Dict[str, float] = {
            n: cluster.node(n).spec.cpu_weight for n in names}
        self.rack_of: Dict[str, str] = {n: cluster.rack_of(n) for n in names}
        self.racks: Dict[str, List[str]] = cluster.racks()
        #: runnable-or-imminent threads per node (the event-driven counter)
        self.count: Dict[str, int] = {n: 0 for n in names}
        #: runnable-or-imminent threads per *tenant* across the whole
        #: cluster — the admission controller's fair-share signal.
        #: Only tenant-tagged work is counted (segments bill to their
        #: parent's tenant), so legacy single-tenant runs keep this
        #: empty and pay nothing.
        self.tenant_count: Dict[str, int] = {}
        #: summed cpu_weight of *live* nodes — the denominator of a
        #: tenant's fair share; shrinks when a node crash-retires so
        #: fair shares track the capacity that actually remains
        self.live_capacity: float = sum(self.weights.values())
        #: per-rack aggregates: runnable threads and static capacity
        #: (summed cpu_weight, from the topology) — rack_load() is the
        #: coarse signal admission control / dashboards read without
        #: touching any per-node state
        self.rack_count: Dict[str, int] = {r: 0 for r in self.racks}
        self.rack_weight: Dict[str, float] = {
            r: cluster.rack_capacity(r) for r in self.racks}
        #: current weighted load per node (count / cpu_weight)
        self._load: Dict[str, float] = {n: 0.0 for n in names}
        #: per-node update version: a heap entry is valid iff it carries
        #: the node's current version, so at most ONE entry per node is
        #: ever valid and toggling loads cannot breed duplicates
        self._version: Dict[str, int] = {n: 0 for n in names}
        #: crashed nodes (chaos layer): retired nodes keep their
        #: counters (the scheduler's -1 bumps must stay balanced while
        #: it drains the dead queue) but never re-enter the heaps — a
        #: retirement bumps the version so stale entries die lazily on
        #: the next pop-skip, and ``add`` stops pushing fresh ones
        self._retired: set = set()
        #: live members per rack (a fully-dead rack drops out of the
        #: gossip digest and the saturation vote)
        self._rack_live: Dict[str, int] = {
            r: len(members) for r, members in self.racks.items()}
        #: per-rack lazy-deletion heaps of (load, node, version)
        self._heaps: Dict[str, List[Tuple[float, str, int]]] = {
            r: [(0.0, n, 0) for n in sorted(members)]
            for r, members in self.racks.items()}
        #: cached per-rack digests: rack -> (min load, argmin node)
        self._summary: Dict[str, Tuple[float, str]] = {}
        self._summary_version: Dict[str, int] = {}
        #: lazy-deletion heap over rack digests: (load, rack, version)
        self._rack_heap: List[Tuple[float, str, int]] = []
        self._gossip_at: Optional[float] = None
        #: heap pushes+pops performed (the deterministic cost metric the
        #: scale benchmark records per decision)
        self.ops = 0
        #: cross-rack digest refreshes performed
        self.gossip_rounds = 0
        for r in self._heaps:
            self.ops += len(self._heaps[r])

    # -- event-driven updates ----------------------------------------------

    def load(self, node: str, extra: int = 0) -> float:
        """Current weighted load of ``node`` (+ ``extra`` threads the
        caller holds in hand), O(1)."""
        if extra:
            return self._load[node] + extra / self.weights[node]
        return self._load[node]

    def add(self, node: str, delta: int,
            tenant: Optional[str] = None) -> None:
        """Apply a runnable-count change (enqueue/dequeue/run/finish/
        delivery ±1); O(log n) for the heap entry.  ``tenant`` bills
        the same change to a tenant's cluster-wide counter."""
        c = self.count[node] + delta
        if c < 0:
            raise ClusterError(
                f"load index underflow on {node}: {self.count[node]}{delta:+d}")
        self.count[node] = c
        if tenant is not None:
            t = self.tenant_count.get(tenant, 0) + delta
            if t < 0:
                raise ClusterError(
                    f"tenant load underflow for {tenant!r}: "
                    f"{self.tenant_count.get(tenant, 0)}{delta:+d}")
            self.tenant_count[tenant] = t
        load = c / self.weights[node]
        self._load[node] = load
        rack = self.rack_of[node]
        self.rack_count[rack] += delta
        v = self._version[node] + 1
        self._version[node] = v
        if node in self._retired:
            return  # counters stay exact; a dead node never re-enters
        heappush(self._heaps[rack], (load, node, v))
        self.ops += 1

    def retire(self, node: str) -> None:
        """Remove a crashed node from every future load answer: its
        heap entries go stale (version bump) and are lazily purged on
        the next pop-skip, the gossip digest stops counting its rack
        seat, and :meth:`pick_underloaded` will never return it.  The
        runnable counters keep working so the scheduler can drain the
        dead node's queue with balanced ±1 bumps."""
        if node in self._retired:
            return
        self._retired.add(node)
        self._version[node] += 1
        self._rack_live[self.rack_of[node]] -= 1
        self.live_capacity -= self.weights[node]

    def is_live(self, node: str) -> bool:
        return node not in self._retired

    def rack_load(self, rack: str) -> float:
        """Aggregate rack load: runnable threads per unit of the rack's
        summed capacity — O(1), event-driven like the per-node loads."""
        return self.rack_count[rack] / self.rack_weight[rack]

    # -- rack minima --------------------------------------------------------

    def rack_min(self, rack: str,
                 exclude: Optional[str] = None) -> Optional[Tuple[float, str]]:
        """Freshest ``(load, node)`` minimum of one rack, skipping
        ``exclude``; lazy-deletion pop-skip, O(log n) amortized."""
        heap = self._heaps[rack]
        version = self._version
        excluded: List[Tuple[float, str, int]] = []
        best: Optional[Tuple[float, str]] = None
        while heap:
            load, node, v = heap[0]
            if v != version[node]:
                heappop(heap)  # stale entry: the node moved on
                self.ops += 1
                continue
            if node == exclude:
                excluded.append(heappop(heap))
                self.ops += 1
                continue
            best = (load, node)
            break
        for entry in excluded:
            heappush(heap, entry)
            self.ops += 1
        return best

    # -- the gossip digest --------------------------------------------------

    def _gossip(self, now: float) -> None:
        """One gossip round: re-digest every rack's minimum and refresh
        the cross-rack heap.  Runs at most once per ``staleness``
        interval, so its O(racks · log) cost amortizes to ~zero per
        decision."""
        self._gossip_at = now
        self.gossip_rounds += 1
        for rack in self._heaps:
            m = self.rack_min(rack)
            if m is None:  # every member crashed: no digest seat
                self._summary.pop(rack, None)
                self._summary_version.pop(rack, None)
                continue
            v = self._summary_version.get(rack, 0) + 1
            self._summary_version[rack] = v
            self._summary[rack] = m
            heappush(self._rack_heap, (m[0], rack, v))
            self.ops += 1

    def _maybe_gossip(self, now: float) -> None:
        if (self._gossip_at is None
                or now - self._gossip_at >= self.staleness):
            self._gossip(now)

    def remote_min(self, now: float, exclude_rack: str
                   ) -> Optional[Tuple[float, str]]:
        """Best ``(load, node)`` outside ``exclude_rack`` according to
        the (≤ ``staleness``-old) gossip digest."""
        self._maybe_gossip(now)
        heap = self._rack_heap
        versions = self._summary_version
        excluded: List[Tuple[float, str, int]] = []
        best: Optional[Tuple[float, str]] = None
        while heap:
            load, rack, v = heap[0]
            if v != versions.get(rack):
                heappop(heap)  # superseded digest
                self.ops += 1
                continue
            if rack == exclude_rack:
                excluded.append(heappop(heap))
                self.ops += 1
                continue
            best = self._summary[rack]
            break
        for entry in excluded:
            heappush(heap, entry)
            self.ops += 1
        return best

    def saturated(self, now: float, threshold: float) -> bool:
        """Does the gossip digest report *every* rack saturated — its
        least-loaded node at or above ``threshold`` weighted threads?
        The front-door admission stub reads this before queueing a
        request; like every cross-rack question it runs on the (≤
        ``staleness``-old) digest, so it is O(racks) dict reads, not a
        cluster scan."""
        self._maybe_gossip(now)
        for rack in self.racks:
            if self._rack_live.get(rack, 1) <= 0:
                continue  # a fully-crashed rack cannot veto shedding
            m = self._summary.get(rack)
            if m is None or m[0] < threshold:
                return False
        return True

    # -- the decision -------------------------------------------------------

    def pick_underloaded(self, now: float, src: str, src_load: float,
                         min_gap: float) -> Optional[str]:
        """The best offload target seen from ``src``: the lighter of
        (a) the freshest minimum of ``src``'s own rack and (b) the
        gossip digest's best remote-rack node, with same-rack winning
        ties (one switch hop beats an aggregation-switch crossing).

        The remote candidate comes from a digest that may be up to
        ``staleness`` old, so it is *probed* before committing: its
        current load (an O(1) read — one peer asked, not the whole
        cluster) replaces the digest value.  Without the probe every
        hot node ships to the digest's argmin until the next gossip
        round — the dogpile that fresh in-flight accounting exists to
        prevent.  Returns None unless the chosen target is at least
        ``min_gap`` weighted threads below ``src_load``."""
        local = self.rack_min(self.rack_of[src], exclude=src)
        remote = self.remote_min(now, self.rack_of[src])
        if remote is not None and remote[1] in self._retired:
            # The digest is allowed to be stale, but a crashed node is
            # never a target: the probe that follows would read its
            # frozen (attractive) load, so the candidacy dies here and
            # the entry is purged at the next gossip round.
            remote = None
        if remote is not None:
            remote = (self._load[remote[1]], remote[1])  # probe: fresh load
        if local is not None and (remote is None or local[0] <= remote[0]):
            cand = local
        else:
            cand = remote
        if cand is None or src_load - cand[0] < min_gap:
            return None
        return cand[1]


# -- from-scratch references (property-test oracles) ---------------------------


def recompute_load(sched, node: str, extra: int = 0) -> float:
    """Reference weighted load recomputed from scheduler state: queue
    depth + the running slot + deliveries in flight, per unit of
    capacity.  The incremental counter must always equal this."""
    busy = 1 if sched.running.get(node) is not None else 0
    in_flight = sched.pending.get(node, 0)
    return (len(sched.stores[node]) + busy + in_flight + extra) \
        / sched.cluster.node(node).spec.cpu_weight


def naive_pick(index: LoadIndex, src: str, src_load: float,
               min_gap: float) -> Optional[str]:
    """Reference decision: full scan implementing exactly the documented
    rule (fresh loads everywhere — i.e. ``staleness=0`` semantics)."""
    src_rack = index.rack_of[src]
    local: Optional[Tuple[float, str]] = None
    for n in index.racks[src_rack]:
        if n == src or not index.is_live(n):
            continue
        key = (index.load(n), n)
        if local is None or key < local:
            local = key
    remote: Optional[Tuple[float, str, str]] = None
    for rack, members in index.racks.items():
        if rack == src_rack:
            continue
        live = [(index.load(n), n) for n in members if index.is_live(n)]
        if not live:
            continue
        m = min(live)
        key = (m[0], rack, m[1])
        if remote is None or key < remote:
            remote = key
    if local is not None and (remote is None or local[0] <= remote[0]):
        cand: Optional[Tuple[float, str]] = local
    else:
        cand = (remote[0], remote[2]) if remote is not None else None
    if cand is None or src_load - cand[0] < min_gap:
        return None
    return cand[1]


class StreamingQuantile:
    """O(1)-space streaming quantile estimator (the P² algorithm,
    Jain & Chlamtac 1985).

    Five markers track the running ``p``-quantile without storing the
    sample; below five observations the exact linearly-interpolated
    quantile of the stored prefix is returned.  Fully deterministic —
    the same observation sequence always yields the same estimate —
    so scheduler runs replay bit-identically."""

    __slots__ = ("p", "n", "q", "pos", "want", "_seed")

    def __init__(self, p: float = 0.75):
        self.p = p
        self.n = 0
        self._seed: List[float] = []
        self.q: List[float] = []
        self.pos: List[int] = []
        self.want: List[float] = []

    def observe(self, x: float) -> None:
        self.n += 1
        if self.q:
            self._update(x)
            return
        self._seed.append(float(x))
        if len(self._seed) < 5:
            return
        # Transition to marker mode: the five samples become markers.
        self._seed.sort()
        p = self.p
        self.q = list(self._seed)
        self.pos = [1, 2, 3, 4, 5]
        self.want = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
        self._seed = []

    def _update(self, x: float) -> None:
        q, pos = self.q, self.pos
        p = self.p
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = max(q[4], x)
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1
        want = self.want
        want[1] += p / 2
        want[2] += p
        want[3] += (1 + p) / 2
        want[4] += 1
        # Adjust interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = want[i] - pos[i]
            if (d >= 1 and pos[i + 1] - pos[i] > 1) or \
                    (d <= -1 and pos[i - 1] - pos[i] < -1):
                d = 1 if d > 0 else -1
                cand = self._parabolic(i, d)
                if q[i - 1] < cand < q[i + 1]:
                    q[i] = cand
                else:
                    q[i] = q[i] + d * (q[i + d] - q[i]) / (pos[i + d]
                                                          - pos[i])
                pos[i] += d

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self.q, self.pos
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))

    def estimate(self) -> Optional[float]:
        """Current quantile estimate (None before any observation)."""
        if self.q:
            return self.q[2]
        if not self._seed:
            return None
        xs = sorted(self._seed)
        if len(xs) == 1:
            return xs[0]
        r = self.p * (len(xs) - 1)
        lo = int(r)
        frac = r - lo
        if lo + 1 >= len(xs):
            return xs[-1]
        return xs[lo] + frac * (xs[lo + 1] - xs[lo])


class WorkProfile:
    """Online per-program cost profile for offload victim selection.

    Learns from completed requests (segment work is credited back to
    the parent, so the profile covers the whole request even when parts
    ran remotely).  Two statistics per program:

    * the running **mean** instructions-per-request (reporting,
      ablations);
    * a streaming **P75** (:class:`StreamingQuantile`), which is what
      ``remaining()`` budgets against.  On bimodal mixes — the same
      program cheap for most arguments, expensive for a tail — the
      mean sits uselessly between the modes and vetoes threads from
      the expensive mode as "nearly done" when most of their work is
      still ahead; the 75th percentile keeps the heavy mode
      offloadable while still fencing off genuinely-finishing threads.

    ``remaining(req)`` estimates how much work a running request (or a
    migrated segment of one — work done on the parent's behalf counts)
    still has; the offload policies use it to stop shipping
    deep-but-nearly-done threads whose residual work is worth less
    than the migration itself."""

    #: quantile the remaining-work budget is measured against
    QUANTILE = 0.75

    def __init__(self) -> None:
        self._mean: Dict[str, float] = {}
        self._count: Dict[str, int] = {}
        self._quant: Dict[str, StreamingQuantile] = {}

    def observe(self, program: str, instrs: int) -> None:
        """Fold one completed request's instruction count in."""
        c = self._count.get(program, 0) + 1
        m = self._mean.get(program, 0.0)
        self._count[program] = c
        self._mean[program] = m + (instrs - m) / c
        sq = self._quant.get(program)
        if sq is None:
            sq = self._quant[program] = StreamingQuantile(self.QUANTILE)
        sq.observe(instrs)

    def mean(self, program: str) -> Optional[float]:
        return self._mean.get(program)

    def p75(self, program: str) -> Optional[float]:
        sq = self._quant.get(program)
        return sq.estimate() if sq is not None else None

    def remaining(self, req) -> Optional[float]:
        """Estimated instructions left in ``req``, measured against the
        program's P75 cost; None when the program has no profile yet.
        For a migrated segment, the work already done spans the
        parent's pre-offload quanta plus the segment's own."""
        spec = req.spec
        done = req.instrs
        if spec is None and req.parent is not None:
            spec = req.parent.spec
            done += req.parent.instrs
        if spec is None:
            return None
        budget = self.p75(spec.program)
        if budget is None:
            return None
        return max(0.0, budget - done)
