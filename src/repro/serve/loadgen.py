"""Requests and the load generator.

A :class:`Request` is one admitted guest-program invocation moving
through the scheduler; the :class:`LoadGenerator` turns a request mix
into a deterministic arrival stream inside the event kernel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.serve.tenants import TenantSet
from repro.vm.frames import ThreadState
from repro.workloads.mixes import RequestMix, RequestSpec


@dataclass
class Request:
    """One unit of schedulable work.

    ``kind`` is ``"request"`` for an admitted guest-program invocation
    and ``"segment"`` for the worker-side half of a SOD offload (the
    migrated top frames executing remotely on behalf of a parent
    request).  Segments are scheduled like requests and are never
    counted as served; under a policy with ``max_seg_hops > 0`` a hot
    worker may re-offload one along a Fig. 1c chain (each hop is a
    fresh segment request for the same parent — ``hops`` counts the
    chain length, reusing the pre-start handoff counter, which
    segments never use).
    """

    rid: int
    spec: Optional[RequestSpec] = None
    kind: str = "request"
    #: virtual admission / first-run / completion times (env.now)
    arrival: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: the guest thread (created on first quantum) and the node whose
    #: machine owns its frames
    thread: Optional[ThreadState] = None
    host_node: Optional[str] = None
    #: lifecycle: queued -> running -> (remote ->) queued -> done|failed
    #: ("shed" = refused at the front door by admission control)
    state: str = "queued"
    result: Any = None
    error: Optional[str] = None
    #: pre-start handoff count (bounded by the policy's max_hops)
    hops: int = 0
    #: class-loader namespace tag this request's thread runs in (None
    #: for reentrant programs; non-reentrant requests get a fresh
    #: per-request namespace at first spawn — their own static cells
    #: on every node the request or its segments touch)
    namespace: Optional[str] = None
    #: quanta this request has consumed
    quanta: int = 0
    #: guest instructions executed on this request's behalf so far
    #: (segments credit their instructions back to the parent on
    #: completion, so the count spans remote work too) — feeds the
    #: online per-program work profile used for victim selection
    instrs: int = 0
    #: times this request's top frames were offloaded via SOD
    sod_offloads: int = 0
    #: for segments: the request whose frames these are, and how many
    parent: Optional["Request"] = None
    nframes: int = 0
    #: chaos layer: times this request was restarted from scratch after
    #: a fault (bounded by the scheduler's ``max_retries``)
    retries: int = 0
    #: chaos layer: set on a segment whose parent was recovered
    #: elsewhere — whoever holds it next discards it instead of
    #: running/completing it (the exactly-once recovery arbiter)
    cancelled: bool = False
    #: tenant this request is billed to (segments inherit their
    #: parent's tenant, so offloading never launders one tenant's load
    #: into another's share); None = the legacy single-tenant mode
    tenant: Optional[str] = None
    #: namespace was leased from the tenant's warm pool — completion
    #: recycles the tag back to the pool instead of forgetting it
    #: (retry/failure paths retire it regardless: a cancelled zombie
    #: segment may still invalidate the tag's ledger entries later)
    pooled: bool = False

    @property
    def depth(self) -> int:
        return self.thread.depth() if self.thread is not None else 0

    def label(self) -> str:
        if self.kind == "segment":
            return f"seg#{self.rid}<-{self.parent.label()}"
        return f"req#{self.rid}:{self.spec.label()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.label()} {self.state}>"


class LoadGenerator:
    """Turns a :class:`RequestMix` into a deterministic arrival stream.

    Three arrival models, in increasing generality:

    * **fixed-gap** (the legacy default): ``interarrival`` is the fixed
      virtual gap between admissions; 0 models a burst that is already
      queued when serving starts.  The whole schedule is a pure
      function of (mix, n, seed, interarrival) and is byte-identical
      to what pre-tenant builds produced.
    * **open-loop Poisson** (``arrival_rate`` set, no tenants):
      exponential interarrival gaps at ``arrival_rate`` requests per
      virtual second.  Open-loop means arrivals never wait for
      completions — offered load keeps coming past saturation, which
      is exactly what overload control must be measured against.
    * **per-tenant Poisson** (``tenants`` set): every tenant gets an
      *independently seeded* stream — arrivals at ``arrival_rate *
      tenant.rate_factor``, program draws from the mix under a
      tenant-keyed seed.  Each stream is a pure function of (mix,
      seed, tenant name, rate), **never** of the other tenants, so
      adding or removing a tenant leaves everyone else's request
      sequence byte-identical (one shared ``Random`` here is a
      determinism bug waiting to happen).  Streams are merged by
      ``(time, tenant name)`` and truncated to ``n_requests`` total.
    """

    def __init__(self, mix: RequestMix, n_requests: int, seed: int = 0,
                 interarrival: float = 0.0,
                 tenants: Optional[TenantSet] = None,
                 arrival_rate: Optional[float] = None):
        if n_requests < 1:
            raise ValueError(f"need at least one request, got {n_requests}")
        if interarrival < 0:
            raise ValueError(f"negative interarrival {interarrival}")
        if arrival_rate is not None and arrival_rate <= 0:
            raise ValueError(f"arrival rate must be > 0, got {arrival_rate}")
        if tenants and arrival_rate is None:
            raise ValueError("tenant streams need an arrival_rate")
        self.mix = mix
        self.n_requests = n_requests
        self.seed = seed
        self.interarrival = interarrival
        #: empty/None both mean legacy single-tenant mode
        self.tenants = tenants if tenants else None
        self.arrival_rate = arrival_rate

    def specs(self) -> List[RequestSpec]:
        return self.mix.draw(self.n_requests, seed=self.seed)

    def tenant_stream(self, name: str, rate_factor: float = 1.0
                      ) -> List[Tuple[float, RequestSpec]]:
        """One tenant's ``(arrival time, spec)`` stream: ``n_requests``
        Poisson arrivals at ``arrival_rate * rate_factor``.  A pure
        function of (mix, seed, name, rate) — independent of every
        other tenant by construction.  String seeding hashes with
        SHA-512, so the stream is stable across processes."""
        rate = self.arrival_rate * rate_factor
        rng = random.Random(
            f"loadgen:{self.mix.name}:{self.seed}:tenant:{name}")
        specs = self.mix.draw(self.n_requests,
                              seed=f"{self.seed}:tenant:{name}")
        t = 0.0
        out: List[Tuple[float, RequestSpec]] = []
        for spec in specs:
            t += rng.expovariate(rate)
            out.append((t, spec))
        return out

    def schedule(self) -> List[Tuple[float, Optional[str], RequestSpec]]:
        """The merged arrival schedule: ``(time, tenant, spec)`` rows
        in admission order, ``n_requests`` total.  Ties across tenants
        break by name; within a tenant the sort is stable, so FIFO
        order survives."""
        if self.tenants:
            events: List[Tuple[float, Optional[str], RequestSpec]] = []
            for t in self.tenants:
                for when, spec in self.tenant_stream(t.name, t.rate_factor):
                    events.append((when, t.name, spec))
            events.sort(key=lambda e: (e[0], e[1]))
            return events[: self.n_requests]
        if self.arrival_rate:
            return [(when, None, spec)
                    for when, spec in self.tenant_stream("")]
        return [(i * self.interarrival, None, spec)
                for i, spec in enumerate(self.specs())]

    def admit_proc(self, scheduler):
        """Kernel process admitting the stream into ``scheduler``."""
        env = scheduler.env
        if self.tenants or self.arrival_rate:
            now = env.now
            for when, tenant, spec in self.schedule():
                if when > now:
                    yield env.timeout(when - now)
                    now = when
                scheduler.submit(spec, tenant=tenant)
            return
        # Legacy fixed-gap path, kept byte-for-byte: re-deriving the
        # gaps from absolute times would perturb them by float ulps
        # and break bit-reproducibility of the pre-tenant benchmarks.
        for i, spec in enumerate(self.specs()):
            if i and self.interarrival:
                yield env.timeout(self.interarrival)
            scheduler.submit(spec)
