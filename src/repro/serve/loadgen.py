"""Requests and the load generator.

A :class:`Request` is one admitted guest-program invocation moving
through the scheduler; the :class:`LoadGenerator` turns a request mix
into a deterministic arrival stream inside the event kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.vm.frames import ThreadState
from repro.workloads.mixes import RequestMix, RequestSpec


@dataclass
class Request:
    """One unit of schedulable work.

    ``kind`` is ``"request"`` for an admitted guest-program invocation
    and ``"segment"`` for the worker-side half of a SOD offload (the
    migrated top frames executing remotely on behalf of a parent
    request).  Segments are scheduled like requests and are never
    counted as served; under a policy with ``max_seg_hops > 0`` a hot
    worker may re-offload one along a Fig. 1c chain (each hop is a
    fresh segment request for the same parent — ``hops`` counts the
    chain length, reusing the pre-start handoff counter, which
    segments never use).
    """

    rid: int
    spec: Optional[RequestSpec] = None
    kind: str = "request"
    #: virtual admission / first-run / completion times (env.now)
    arrival: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: the guest thread (created on first quantum) and the node whose
    #: machine owns its frames
    thread: Optional[ThreadState] = None
    host_node: Optional[str] = None
    #: lifecycle: queued -> running -> (remote ->) queued -> done|failed
    #: ("shed" = refused at the front door by admission control)
    state: str = "queued"
    result: Any = None
    error: Optional[str] = None
    #: pre-start handoff count (bounded by the policy's max_hops)
    hops: int = 0
    #: class-loader namespace tag this request's thread runs in (None
    #: for reentrant programs; non-reentrant requests get a fresh
    #: per-request namespace at first spawn — their own static cells
    #: on every node the request or its segments touch)
    namespace: Optional[str] = None
    #: quanta this request has consumed
    quanta: int = 0
    #: guest instructions executed on this request's behalf so far
    #: (segments credit their instructions back to the parent on
    #: completion, so the count spans remote work too) — feeds the
    #: online per-program work profile used for victim selection
    instrs: int = 0
    #: times this request's top frames were offloaded via SOD
    sod_offloads: int = 0
    #: for segments: the request whose frames these are, and how many
    parent: Optional["Request"] = None
    nframes: int = 0
    #: chaos layer: times this request was restarted from scratch after
    #: a fault (bounded by the scheduler's ``max_retries``)
    retries: int = 0
    #: chaos layer: set on a segment whose parent was recovered
    #: elsewhere — whoever holds it next discards it instead of
    #: running/completing it (the exactly-once recovery arbiter)
    cancelled: bool = False

    @property
    def depth(self) -> int:
        return self.thread.depth() if self.thread is not None else 0

    def label(self) -> str:
        if self.kind == "segment":
            return f"seg#{self.rid}<-{self.parent.label()}"
        return f"req#{self.rid}:{self.spec.label()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.label()} {self.state}>"


class LoadGenerator:
    """Turns a :class:`RequestMix` into a deterministic arrival stream.

    ``interarrival`` is the fixed virtual gap between admissions (an
    open-loop arrival process; 0 models a burst that is already queued
    when serving starts).  Which program each request runs is drawn from
    the mix with the seeded stream, so the whole schedule is a pure
    function of (mix, n, seed, interarrival).
    """

    def __init__(self, mix: RequestMix, n_requests: int, seed: int = 0,
                 interarrival: float = 0.0):
        if n_requests < 1:
            raise ValueError(f"need at least one request, got {n_requests}")
        if interarrival < 0:
            raise ValueError(f"negative interarrival {interarrival}")
        self.mix = mix
        self.n_requests = n_requests
        self.seed = seed
        self.interarrival = interarrival

    def specs(self) -> List[RequestSpec]:
        return self.mix.draw(self.n_requests, seed=self.seed)

    def admit_proc(self, scheduler):
        """Kernel process admitting the stream into ``scheduler``."""
        env = scheduler.env
        for i, spec in enumerate(self.specs()):
            if i and self.interarrival:
                yield env.timeout(self.interarrival)
            scheduler.submit(spec)
