"""The elastic cluster scheduler.

Each node runs a kernel process that time-slices the guest threads in
its run queue: a quantum of guest instructions executes on the node's
machine (the VM's safepoint-polled preemption keeps fast dispatch), the
consumed virtual CPU time is yielded back to the event kernel, and the
offload policy then decides whether the node is hot enough to push work
away.  Two mechanisms provide the elasticity:

* **request handoff** — a request that has not started yet is just a
  descriptor; it moves to an underloaded node for the price of one
  small message.
* **SOD offload** — a *running* thread's top frames are captured via
  VMTI, shipped, and restored on the target (the paper's
  stack-on-demand migration); the worker-side segment is scheduled like
  any other work, and its completion writes results back and requeues
  the parent's residual stack at home.  Hot batches ship as one bulk
  message (:meth:`repro.migration.sodee.SODEngine.migrate_many`).

Scale-out design (dozens of nodes, thousands of requests): every load
question is answered by an incrementally-maintained
:class:`repro.serve.loadindex.LoadIndex` — event-driven per-node
counters, per-rack lazy-deletion heaps, and a bounded-staleness
cross-rack gossip digest — so placement/handoff/offload decisions are
O(log n) in cluster size instead of all-node scans.  Offload victims
are ranked by *estimated remaining work* (an online per-program
profile), and all deliveries ride the network's link resources, so an
offload storm queues on the wire instead of transferring for free.

Everything runs under the discrete-event kernel with deterministic
tie-breaking, so a serving run is a pure function of (cluster, mix,
seed, knobs) and replays bit-identically in CI.

Faults and recovery (the chaos layer, :mod:`repro.chaos`): a node may
*crash* mid-run (:meth:`ClusterScheduler.crash_node`) and links may
fail, so every delivery carries a bounded retry/backoff budget with a
requeue-at-origin fallback, and lost work is recovered from clean
state: a first-hop segment lost with its worker is *re-executed from
home state* (the home thread kept its full stack, and release
consistency means the dead worker's dirty writes never landed — they
are discarded atomically with the machine), while a chain-hop segment
(whose earlier hops already flushed partial effects home) or a request
whose *home* died is retried from scratch under a fresh namespace,
bounded by ``max_retries``.  Because requests are pure functions of
their spec and recovery only ever discards un-published state, a
completed response under any fault schedule still matches its solo
oracle.  Faults arrive as deterministic kernel events, so chaos runs
replay byte-identically too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cluster.topology import Cluster, serve_cluster
from repro.errors import ClusterError, MigrationError
from repro.migration.segments import max_migratable
from repro.migration.sodee import Host, SODEngine
from repro.serve.loadgen import LoadGenerator, Request
from repro.serve.loadindex import (DEFAULT_STALENESS, LoadIndex, WorkProfile)
from repro.serve.policies import (AdaptiveShed, ClockPressurePolicy,
                                  FrontDoorPlacement, OffloadPolicy,
                                  Placement, QueueDepthPolicy,
                                  ShedWhenSaturated,
                                  WeightedRoundRobinPlacement)
from repro.serve.tenants import TenantSet
from repro.serve.wfq import FairStore
from repro.sim.kernel import Store
from repro.vm.costmodel import CostModel, sodee_model
from repro.workloads.mixes import (MIXES, expected_request_result,
                                   needs_isolation, serve_classpath)

#: serving-scale per-instruction time: one request is milliseconds of
#: guest compute, so the fixed VMTI/transfer costs of an offload are
#: small relative to the work it moves (the regime the paper's
#: mobility scenarios assume)
SERVE_INSTR_SECONDS = 1e-6

#: wire size of a handed-off request descriptor (entry point + args)
DESCRIPTOR_BYTES = 192

#: sentinel shutting down a node process
_STOP = object()

#: base backoff before a failed delivery is retransmitted (doubles per
#: attempt) — long enough that a healed blip succeeds on retry, short
#: enough that the requeue-at-origin fallback fires well inside one
#: request's service time
DELIVERY_BACKOFF = 250e-6

#: queued threads one offload decision may examine when gathering batch
#: victims: keeps the decision cost independent of queue depth (a
#: thousand-deep backlog must not make every offload an O(queue) walk)
VICTIM_SCAN_WINDOW = 64

#: profile-driven tier-up: when :class:`WorkProfile` already knows a
#: program averages at least this many instructions per request, its
#: entry point is tier-2 compiled at spawn instead of interpreting the
#: first ``JIT_THRESHOLD`` activations of a request that will run for
#: many quanta anyway
PRECOMPILE_INSTRS = 50_000


@dataclass
class ServeReport:
    """Outcome of one serving run (JSON-friendly via :meth:`to_dict`)."""

    n_nodes: int
    submitted: int
    served: int
    failed: int
    unserved: int
    correct: int
    makespan: float
    throughput: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_max: float
    per_node: Dict[str, Dict[str, Any]]
    stats: Dict[str, int]
    quantum: int
    mix: str = ""
    seed: int = 0
    #: per-tenant outcome blocks (admitted/shed/done, P50/P95, quanta);
    #: empty in single-tenant runs
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        d = {
            "mix": self.mix, "seed": self.seed, "n_nodes": self.n_nodes,
            "quantum": self.quantum, "submitted": self.submitted,
            "served": self.served, "failed": self.failed,
            "unserved": self.unserved, "correct": self.correct,
            "makespan_s": self.makespan,
            "throughput_rps": self.throughput,
            "latency_s": {
                "mean": self.latency_mean, "p50": self.latency_p50,
                "p95": self.latency_p95, "max": self.latency_max,
            },
            "per_node": self.per_node,
            "sched": dict(self.stats),
        }
        # Only multi-tenant runs carry the block: a tenant-free run's
        # dict stays byte-identical to pre-tenant builds.
        if self.tenants:
            d["tenants"] = self.tenants
        return d


class ClusterScheduler:
    """Serves a stream of guest-program requests across a cluster."""

    def __init__(self, cluster: Cluster, classes: Dict[str, Any],
                 cost: Optional[CostModel] = None,
                 quantum: int = 2500,
                 placement: Optional[Placement] = None,
                 offload: Optional[OffloadPolicy] = None,
                 front: Optional[str] = None,
                 staleness: float = DEFAULT_STALENESS,
                 isolation: str = "auto",
                 admission: Optional[Any] = None,
                 tracer: Optional[Any] = None,
                 max_retries: int = 3,
                 delivery_retries: int = 2,
                 tenants: Optional[TenantSet] = None):
        if isolation not in ("auto", "all", "off"):
            raise ClusterError(f"unknown isolation mode {isolation!r}")
        if not cluster.nodes:
            raise ClusterError("cannot schedule on an empty cluster")
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.node_names: List[str] = list(cluster.names())
        self.front = front or self.node_names[0]
        if self.front not in cluster.nodes:
            raise ClusterError(f"front node {self.front!r} not in cluster")
        self.engine = SODEngine(
            cluster, classes,
            cost=cost or sodee_model(SERVE_INSTR_SECONDS))
        # Fresh tier-up profile per serving run: classpaths are cached
        # (lru) across runs in one process, and hotness carried over
        # from an earlier run would tier methods up at different times
        # — breaking the byte-identical record/replay contract.
        for cf in classes.values():
            for code in cf.methods.values():
                code.hotness = 0
        self.quantum = quantum
        self.placement = placement or WeightedRoundRobinPlacement()
        self.offload = offload
        #: per-request static isolation: "auto" gives every request of
        #: a non-reentrant program (FFT/TSP — statics carry request
        #: state) a fresh class-loader namespace; "all" isolates every
        #: request; "off" restores the PR 2 shared-cells behavior
        #: (reentrant-only mixes)
        self.isolation = isolation
        #: front-door admission control (None = admit everything)
        self.admission = admission
        #: the tenant tier (None/empty = legacy single-tenant mode:
        #: plain FIFO queues, no per-tenant accounting, no pooling —
        #: structurally the pre-tenant code paths, byte-identical runs)
        self.tenants = tenants if tenants else None
        #: per-node run queues (both expose .items for load inspection);
        #: with tenants configured each queue is a weighted fair store —
        #: stride scheduling over Tenant.weight, so one tenant's backlog
        #: cannot starve another's quanta on any node it shares
        if self.tenants:
            tw = {t.name: t.weight for t in self.tenants}
            self.stores: Dict[str, Any] = {
                n: FairStore(self.env, name=f"runq:{n}", weights=tw)
                for n in self.node_names}
        else:
            self.stores = {
                n: Store(self.env, name=f"runq:{n}") for n in self.node_names}
        #: per-tenant namespace pools: free (warm) tags ready to lease,
        #: live tag counts against Tenant.pool, and a monotonic mint
        #: sequence (a retired tag's index is never reissued — a zombie
        #: segment of the old lease may still invalidate entries under
        #: the old tag name)
        self._ns_free: Dict[str, List[str]] = {}
        self._ns_live: Dict[str, int] = {}
        self._ns_seq: Dict[str, int] = {}
        #: per-tenant outcome counters + served latencies (report fuel)
        self.tenant_stats: Dict[str, Dict[str, int]] = {}
        self._tenant_lat: Dict[str, List[float]] = {}
        if self.tenants:
            for t in self.tenants:
                self.tenant_stats[t.name] = {
                    "submitted": 0, "admitted": 0, "shed": 0,
                    "done": 0, "failed": 0, "quanta": 0}
                self._tenant_lat[t.name] = []
        #: the request currently holding each node's CPU (or None)
        self.running: Dict[str, Optional[Request]] = {
            n: None for n in self.node_names}
        #: handoffs/segments in flight toward each node — counted as
        #: load so simultaneous offload decisions don't dogpile one
        #: idle target before any delivery lands
        self.pending: Dict[str, int] = {n: 0 for n in self.node_names}
        #: the incremental load index answering every load question the
        #: policies ask; all mutations of stores/running/pending go
        #: through :meth:`_bump` to keep it exact
        self.load_index = LoadIndex(cluster, staleness=staleness)
        #: online per-program instructions-per-request profile
        self.profile = WorkProfile()
        #: event-driven guest-CPU counters (per node + cluster total),
        #: bumped once per quantum — the clock-pressure policy's O(1)
        #: alternative to summing machine clocks across the cluster
        self.cpu_used: Dict[str, float] = {n: 0.0 for n in self.node_names}
        self.cpu_total: float = 0.0
        #: host wall-clock seconds spent inside pick_underloaded (not
        #: part of the simulation: profiling data for the scale bench)
        self.decision_seconds: float = 0.0
        self.requests: List[Request] = []
        self.finished: List[Request] = []
        #: chaos-layer state: an event tracer (duck-typed ``emit(now,
        #: kind, fields)``; None = tracing off), the per-request retry
        #: budget, and the per-delivery retransmission budget
        self.tracer = tracer
        self.max_retries = max_retries
        self.delivery_retries = delivery_retries
        #: permanently crashed nodes (their processes idle forever)
        self.dead: set = set()
        #: bumped by :meth:`crash_node`; a node process compares the
        #: epoch before and after a quantum's virtual span to learn its
        #: machine died under the running request
        self.crash_epoch: Dict[str, int] = {n: 0 for n in self.node_names}
        #: segments whose parent is still ``"remote"``, keyed by rid —
        #: a dict (not a set) so recovery iteration order is insertion
        #: order, never id-hash order (replay determinism)
        self.active_segments: Dict[int, Request] = {}
        self.stats: Dict[str, int] = {
            "quanta": 0, "handoffs": 0, "sod_offloads": 0,
            "batched_threads": 0, "offload_aborts": 0, "completions": 0,
            "failed": 0, "decisions": 0, "decision_ops": 0,
            "victim_vetoes": 0, "seg_rehops": 0, "shed": 0,
            "isolated": 0, "tier2_precompiles": 0,
            "crashes": 0, "link_failures": 0, "straggles": 0,
            "retries": 0, "seg_recoveries": 0, "home_requeues": 0,
            "cancelled_segments": 0, "fault_aborts": 0,
            "delivery_retries": 0, "delivery_drops": 0,
            "requeued_home": 0,
            "pool_leases": 0, "pool_reuses": 0, "pool_cells_reset": 0,
            "pool_exhausted": 0, "pool_retired": 0,
        }
        self._expected: Optional[int] = None
        self._next_rid = 0
        self._stopped = False
        for n in self.node_names:
            self.env.process(self._node_proc(n), name=f"node:{n}")

    def _trace(self, kind: str, **fields: Any) -> None:
        """Emit one trace event at the current virtual time (no-op
        without a tracer, so fault-free runs pay nothing)."""
        if self.tracer is not None:
            self.tracer.emit(self.env.now, kind, fields)

    # -- admission ---------------------------------------------------------

    def submit(self, spec, tenant: Optional[str] = None) -> Request:
        """Admit one request now; placement picks its first queue.
        With admission control installed and the controller refusing it
        (digest saturation, or the tenant over its fair share), the
        request is *shed* instead: finished on arrival with state
        ``"shed"`` and counted, never queued — the client got a fast
        overload signal rather than an unbounded queueing delay."""
        req = Request(rid=self._take_rid(), spec=spec, arrival=self.env.now,
                      tenant=tenant)
        self.requests.append(req)
        tstat = self._tstat(tenant)
        if tstat is not None:
            tstat["submitted"] += 1
        if self.admission is not None and not self.admission.admit(self, req):
            req.state = "shed"
            req.finished_at = self.env.now
            self.stats["shed"] += 1
            if tstat is not None:
                tstat["shed"] += 1
            self._trace("shed", rid=req.rid, program=spec.program,
                        tenant=tenant)
            self.finished.append(req)
            self._maybe_stop()
            return req
        if tstat is not None:
            tstat["admitted"] += 1
        node = self._place_live(req)
        self._trace("submit", rid=req.rid, program=spec.program, node=node)
        self._enqueue(req, node)
        return req

    def _tstat(self, tenant: Optional[str]) -> Optional[Dict[str, int]]:
        """The tenant's outcome counters (created on demand for names
        submitted outside the configured set); None in legacy mode or
        for untagged requests."""
        if tenant is None:
            return None
        st = self.tenant_stats.get(tenant)
        if st is None:
            st = self.tenant_stats[tenant] = {
                "submitted": 0, "admitted": 0, "shed": 0,
                "done": 0, "failed": 0, "quanta": 0}
            self._tenant_lat[tenant] = []
        return st

    def serve(self, load: LoadGenerator) -> ServeReport:
        """Admit ``load``'s stream, run to completion, report.

        One-shot: the node processes exit when the stream completes, so
        a scheduler cannot be reused (a second call would enqueue onto
        queues nobody consumes and silently serve nothing)."""
        if self._stopped:
            raise ClusterError(
                "ClusterScheduler is one-shot: build a fresh scheduler "
                "for another serving run")
        self._expected = (self._expected or 0) + load.n_requests
        self.env.process(load.admit_proc(self), name="loadgen")
        self.env.run()
        return self.report()

    # -- the load index ----------------------------------------------------

    def _bump(self, node: str, delta: int,
              req: Optional[Request] = None) -> None:
        """Apply a runnable-count change to the incremental index,
        billing ``req``'s tenant when it carries one (segments carry
        their parent's tenant, so offloaded work keeps billing to the
        tenant that caused it)."""
        self.load_index.add(node, delta,
                            tenant=req.tenant if req is not None else None)

    def pick_underloaded(self, src: str, src_load: float,
                         min_gap: float) -> Optional[str]:
        """Policy entry point for target picking: an O(log n) index
        query, with the decision count / heap-op cost / host wall time
        accounted for the scale benchmark."""
        idx = self.load_index
        ops0 = idx.ops
        t0 = perf_counter()
        target = idx.pick_underloaded(self.env.now, src, src_load, min_gap)
        self.decision_seconds += perf_counter() - t0
        self.stats["decisions"] += 1
        self.stats["decision_ops"] += idx.ops - ops0
        return target

    # -- scheduling core ---------------------------------------------------

    def _node_proc(self, name: str):
        """One node's serving loop: pop, maybe hand off, run a quantum,
        maybe offload, requeue."""
        store = self.stores[name]
        env = self.env
        policy = self.offload
        while True:
            req = yield store.get()
            if req is _STOP:
                break
            self._bump(name, -1, req)  # left the queue; in hand now
            if req.kind == "segment" and req.cancelled:
                # Its parent was recovered elsewhere while this segment
                # sat queued: void it, never run it.
                self._discard_segment(name, req)
                continue
            if (policy is not None and req.kind == "request"
                    and req.thread is None and req.hops < policy.max_hops):
                target = policy.handoff_target(self, name)
                if target is not None:
                    req.hops += 1
                    self.stats["handoffs"] += 1
                    self._trace("handoff", rid=req.rid, src=name,
                                dst=target)
                    self._dispatch_handoff(req, name, target)
                    continue
            epoch = self.crash_epoch[name]
            self.running[name] = req
            self._bump(name, +1, req)
            req.state = "running"
            try:
                dt, status = self._run_quantum(name, req)
            except MigrationError as e:
                # A dependency crashed out from under the running guest
                # (e.g. an object's home host died mid-fetch): the
                # thread state is beyond saving — recover from clean
                # state instead.
                self.running[name] = None
                self._bump(name, -1, req)
                self.stats["fault_aborts"] += 1
                self._recover_faulted(name, req, str(e))
                continue
            self.stats["quanta"] += 1
            if req.tenant is not None:
                self._tstat(req.tenant)["quanta"] += 1
            self.cpu_used[name] += dt
            self.cpu_total += dt
            if dt > 0:
                # Hold the busy slot across the quantum's virtual span
                # so other nodes' load probes see this CPU occupied.
                yield env.timeout(dt)
            self.running[name] = None
            self._bump(name, -1, req)
            if self.crash_epoch[name] != epoch:
                # The machine died under this quantum.  The crash
                # handler already recovered (or cancelled) the request
                # in the running slot, and even a "finished" status is
                # void — the response never left the dying node.
                continue
            if req.kind == "segment" and req.cancelled:
                self._discard_segment(name, req)
                continue
            if status == "finished":
                done_dt = self._on_finished(name, req)
                if done_dt > 0:
                    yield env.timeout(done_dt)
            else:  # preempted at a safepoint
                target = None
                if policy is not None:
                    if req.kind == "segment":
                        # Fig. 1c chains: an overloaded worker may push
                        # a preempted segment another hop — but never
                        # "onward" to the home that will complete it
                        # anyway (that is just the completion path).
                        target = policy.rehop_target(self, name, req)
                        if (target is not None
                                and target != req.parent.host_node):
                            yield env.timeout(
                                self._seg_rehop(name, req, target))
                            continue
                        target = None
                    else:
                        target = policy.offload_target(self, name, req)
                if target is not None:
                    yield env.timeout(self._sod_offload(name, req, target))
                else:
                    self._enqueue(req, name)

    def _run_quantum(self, node: str, req: Request):
        """Run one quantum of ``req`` on ``node``; returns (virtual
        seconds consumed, run status)."""
        machine = self._host(node).machine
        t0 = machine.clock
        i0 = machine.instr_count
        if req.thread is None:
            req.started_at = self.env.now
            req.host_node = node
            cls, meth = req.spec.main
            if self.isolation == "all" or (
                    self.isolation == "auto"
                    and needs_isolation(req.spec.program)):
                # Static isolation: this request gets its own class-
                # loader namespace — fresh static cells here and on
                # every node a migrated segment of it lands on (the
                # captured state carries the tag).  Reentrant programs
                # skip this entirely and share the root cells.  With a
                # tenant pool, the namespace is *leased*: a recycled
                # tag keeps its linked classes, decoded streams, and
                # tier-2 closures warm instead of re-linking from
                # scratch on every request.
                req.namespace, req.pooled = self._lease_namespace(req)
                self.engine.note_namespace_site(req.namespace, node)
                self.stats["isolated"] += 1
            req.thread = machine.spawn(cls, meth, list(req.spec.args),
                                       thread_name=req.label(),
                                       namespace=req.namespace)
            mean = self.profile.mean(req.spec.program)
            if mean is not None and mean >= PRECOMPILE_INSTRS:
                if machine.precompile(cls, meth, namespace=req.namespace):
                    self.stats["tier2_precompiles"] += 1
        req.quanta += 1
        status = machine.run(req.thread, quantum=self.quantum)
        req.instrs += machine.instr_count - i0
        return machine.clock - t0, status

    # -- deliveries (contention-aware: they ride the link resources) -------

    def _dispatch_handoff(self, req: Request, src: str, target: str) -> None:
        """Start a descriptor handoff toward ``target``, counted as
        pending load immediately (before the wire time elapses)."""
        self.pending[target] += 1
        self._bump(target, +1, req)
        self.env.process(self._handoff_proc(req, src, target),
                         name=f"handoff:{req.rid}")

    def _handoff_proc(self, req: Request, src: str, target: str):
        """Request descriptor in flight: rides the (src, target) link —
        queueing FIFO behind any transfer already on the wire — and
        becomes runnable when delivered (the source keeps serving).

        Delivery is leased, not assumed: a drop (link down, endpoint
        crashed) is retransmitted after an exponential backoff up to
        ``delivery_retries`` times, then the descriptor is requeued at
        its origin — the request is never lost, only its trip."""
        env = self.env
        attempt = 0
        while True:
            ok = yield from self.network.transfer_proc(
                src, target, DESCRIPTOR_BYTES)
            if ok and target not in self.dead:
                self.pending[target] -= 1
                self._bump(target, -1, req)
                self._enqueue(req, target)
                return
            if target in self.dead or attempt >= self.delivery_retries:
                break  # a dead peer never acks; stop retransmitting
            attempt += 1
            self.stats["delivery_retries"] += 1
            yield env.timeout(DELIVERY_BACKOFF * (2 ** (attempt - 1)))
        self.pending[target] -= 1
        self._bump(target, -1, req)
        self.stats["delivery_drops"] += 1
        self.stats["requeued_home"] += 1
        fallback = src if src not in self.dead else self._place_live(req)
        self._trace("delivery_failed", rid=req.rid, src=src, dst=target,
                    fallback=fallback)
        self._enqueue(req, fallback)

    def _dispatch_bulk(self, src: str, target: str,
                       segs: List[Tuple[Request, float]],
                       bulk_wire: float) -> None:
        """Start one bulk segment message toward ``target``; every
        segment counts as pending load immediately."""
        self.pending[target] += len(segs)
        for seg, _restored_at in segs:
            self._bump(target, +1, seg)
        self.env.process(self._bulk_proc(src, target, segs, bulk_wire),
                         name=f"bulk:{src}->{target}")

    def _bulk_proc(self, src: str, target: str,
                   segs: List[Tuple[Request, float]], bulk_wire: float):
        """One bulk offload message in flight: occupies the (src,
        target) link for its wire time — an offload storm serializes on
        the link instead of transferring for free — then the worker
        restores segments sequentially (each ``restored_at`` offset is
        the cumulative restore time after the message lands).

        Like handoffs, the bulk message retries with backoff on a drop;
        when the retry budget is exhausted (or the target died) every
        segment in it is *lost in flight* and recovered — the restored
        worker threads are abandoned (live target) or died with the
        machine (dead target), and each parent re-executes from clean
        state."""
        env = self.env
        attempt = 0
        delivered = False
        while True:
            ok = yield from self.network.occupy_proc(src, target, bulk_wire)
            if ok and target not in self.dead:
                delivered = True
                break
            if target in self.dead or attempt >= self.delivery_retries:
                break
            attempt += 1
            self.stats["delivery_retries"] += 1
            yield env.timeout(DELIVERY_BACKOFF * (2 ** (attempt - 1)))
        if not delivered:
            self.stats["delivery_drops"] += 1
            for seg, _restored_at in segs:
                self.pending[target] -= 1
                self._bump(target, -1, seg)
                self._lost_delivery(seg, target)
            return
        done = 0.0
        for seg, restored_at in segs:
            if restored_at > done:
                yield self.env.timeout(restored_at - done)
                done = restored_at
            self.pending[target] -= 1
            self._bump(target, -1, seg)
            if target in self.dead:
                # The node died between the message landing and this
                # segment's restore completing.
                self._lost_delivery(seg, target)
            elif seg.cancelled:
                self._discard_segment(target, seg)
            else:
                self._enqueue(seg, target)

    # -- completion --------------------------------------------------------

    def _on_finished(self, node: str, req: Request) -> float:
        if req.kind == "segment":
            return self._complete_segment(node, req)
        req.finished_at = self.env.now
        t = req.thread
        if t.uncaught is not None:
            self._trace("fail", rid=req.rid, error=t.uncaught.class_name)
            self._fail(req, t.uncaught.class_name)
        else:
            req.state = "done"
            req.result = t.result
            if req.spec is not None:
                self.profile.observe(req.spec.program, req.instrs)
            if req.tenant is not None:
                self._tstat(req.tenant)["done"] += 1
                self._tenant_lat[req.tenant].append(
                    req.finished_at - req.arrival)
            observe = getattr(self.admission, "observe", None)
            if observe is not None:
                # Adaptive overload control learns from every served
                # request's end-to-end latency (static admission has no
                # observe hook and pays nothing).
                observe(self, req)
            self._drop_namespace(req)
            self._trace("complete", rid=req.rid, node=node,
                        result=repr(req.result))
            self.finished.append(req)
            self._maybe_stop()
        return 0.0

    def _complete_segment(self, node: str, seg: Request) -> float:
        """A migrated segment finished on ``node``: write results back
        to the parent's home and requeue the residual stack there."""
        parent = seg.parent
        self.active_segments.pop(seg.rid, None)
        parent.instrs += seg.instrs  # remote work done on parent's behalf
        if seg.thread.uncaught is not None:
            self.engine.abandon_segment(self._host(node), seg.thread)
            parent.finished_at = self.env.now
            self._trace("fail", rid=parent.rid,
                        error=seg.thread.uncaught.class_name)
            self._fail(parent, seg.thread.uncaught.class_name)
            return 0.0
        dt = self.engine.complete_segment(
            self._host(node), seg.thread,
            self._host(parent.host_node), parent.thread, seg.nframes)
        self.stats["completions"] += 1
        self._trace("seg_complete", rid=parent.rid, seg=seg.rid, node=node)
        self._enqueue(parent, parent.host_node)
        return dt

    def _fail(self, req: Request, error: str) -> None:
        req.state = "failed"
        req.error = error
        self.stats["failed"] += 1
        if req.tenant is not None:
            self._tstat(req.tenant)["failed"] += 1
        self._drop_namespace(req, retire=True)
        self.finished.append(req)
        self._maybe_stop()

    def _lease_namespace(self, req: Request) -> Tuple[str, bool]:
        """The namespace an isolated request runs in: a warm tag from
        its tenant's bounded pool when one is available (re-virginized
        lazily, right here at lease time — a tag that sits in the pool
        unleased never pays a reset), a newly minted pool tag while the
        tenant is under its ``Tenant.pool`` bound, else the legacy
        throwaway ``req{rid}`` namespace."""
        t = self.tenants.get(req.tenant) if self.tenants else None
        if t is None or t.pool <= 0:
            return f"req{req.rid}", False
        self.stats["pool_leases"] += 1
        free = self._ns_free.get(t.name)
        if free:
            tag = free.pop()
            self.stats["pool_reuses"] += 1
            self.stats["pool_cells_reset"] += \
                self.engine.recycle_namespace(tag)
            return tag, True
        live = self._ns_live.get(t.name, 0)
        if live < t.pool:
            self._ns_live[t.name] = live + 1
            seq = self._ns_seq.get(t.name, 0)
            self._ns_seq[t.name] = seq + 1
            return f"t:{t.name}:{seq}", True
        self.stats["pool_exhausted"] += 1
        return f"req{req.rid}", False

    def _drop_namespace(self, req: Request, retire: bool = False) -> None:
        """A request's life is over.  A *pooled* namespace that ends
        cleanly goes back to its tenant's free list, still warm (linked
        classes, decoded streams, tier-2 closures); the reset of its
        dirty statics is deferred to the next lease.  A throwaway
        ``req{rid}`` namespace — or a pooled one on the ``retire`` path
        (retry/failure: cancelled zombie segments may still invalidate
        ledger entries under this tag later, so it must never be
        re-leased) — is forgotten on every host it migrated through, so
        thousands of isolated requests don't accumulate per-node
        state."""
        tag = req.namespace
        if tag is None:
            return
        if req.pooled:
            req.pooled = False
            if not retire:
                self._ns_free.setdefault(req.tenant, []).append(tag)
                return
            # Retired tags give their pool seat back; the sequence
            # counter never reissues the tag name itself.
            self._ns_live[req.tenant] -= 1
            self.stats["pool_retired"] += 1
        self.engine.forget_namespace(tag)

    def _maybe_stop(self) -> None:
        if (self._expected is not None and not self._stopped
                and len(self.finished) >= self._expected):
            self._stopped = True
            for store in self.stores.values():
                store.put(_STOP)

    # -- faults and recovery (the chaos layer's seams) ---------------------

    def crash_node(self, name: str) -> None:
        """Kill ``name`` permanently: its guest threads, worker caches,
        and ledger epochs die with the machine, in-flight transfers
        touching it fail, and every piece of work it held is recovered
        from clean state elsewhere.

        Ownership of recovery is split to make it exactly-once: this
        handler owns (a) the dead run queue's items, (b) the running
        slot, and (c) requests *homed* here whose frames are off on
        remote workers; delivery processes own segments in flight; the
        ``cancelled`` flag arbitrates the overlap — a cancelled segment
        is only ever discarded, never recovered a second time."""
        if name == self.front:
            raise ClusterError("cannot crash the front node "
                               "(ingress + classpath home)")
        if name in self.dead:
            return
        self.dead.add(name)
        self.crash_epoch[name] += 1
        self.stats["crashes"] += 1
        self._trace("fault", fault="crash", node=name)
        self.network.crash_node(name)
        self.load_index.retire(name)
        # 1. Drain the dead run queue.  The node's process is blocked in
        #    get() or mid-quantum; it learns of the crash from its epoch
        #    and settles its own slot accounting.
        store = self.stores[name]
        victims = [r for r in list(store.items) if r is not _STOP]
        for r in victims:
            store.remove(r)
            self._bump(name, -1, r)
        run = self.running[name]
        if run is not None:
            victims.append(run)
        # 2. The engine forgets the host: worker caches, restored
        #    threads, and *both sides* of every ledger it was party to
        #    go (a later re-offload to a reborn name would start cold).
        self.engine.crash_host(name)
        # 3. Recover every victim.
        for r in victims:
            if r.kind == "segment":
                self.active_segments.pop(r.rid, None)
                if r.cancelled:
                    r.state = "cancelled"
                    self.stats["cancelled_segments"] += 1
                else:
                    self._recover_parent(r, "node-crash")
            elif r.thread is None:
                # A descriptor: nothing started, nothing lost — just
                # place it somewhere alive.
                self._trace("recover", rid=r.rid, mode="replace")
                self._enqueue(r, self._place_live(r))
            else:
                self._retry(r, "node-crash")
        # 4. Requests homed here whose residual stacks just died while
        #    their top frames run on remote workers: the home state is
        #    gone, so the whole request restarts (and its live segments
        #    become cancelled zombies wherever they are).
        for r in self.requests:
            if (r.kind == "request" and r.state == "remote"
                    and r.host_node == name):
                self._retry(r, "node-crash")

    def _recover_faulted(self, name: str, req: Request, err: str) -> None:
        """A quantum aborted because a dependency host died mid-fetch:
        discard the poisoned thread state and recover."""
        self._trace("fault_abort", rid=req.rid, node=name, error=err)
        if req.kind == "segment":
            self.active_segments.pop(req.rid, None)
            if req.cancelled:
                req.state = "cancelled"
                self.stats["cancelled_segments"] += 1
                if name not in self.dead and req.thread is not None:
                    self.engine.abandon_segment(self._host(name), req.thread)
                return
            if name not in self.dead and req.thread is not None:
                self.engine.abandon_segment(self._host(name), req.thread)
            req.state = "lost"
            self._recover_parent(req, "dependency-crash")
        else:
            self._retry(req, "dependency-crash")

    def _recover_parent(self, seg: Request, reason: str) -> None:
        """A segment is gone (crashed node, failed delivery): resume
        its parent without it.  A first-hop segment re-executes from
        home state — the home thread kept its full (stale-above-MSP)
        stack at migrate time, and the dead worker's dirty writes were
        never flushed, so requeueing the parent replays exactly the
        offloaded frames with no double-applied effects.  A chain-hop
        segment's earlier hops *did* flush partial effects home
        (rehop's release fence), so only a from-scratch retry under a
        fresh namespace is safe."""
        self.active_segments.pop(seg.rid, None)
        seg.state = "lost"
        parent = seg.parent
        if parent.state != "remote":
            return  # another recovery path already owns the parent
        self.stats["seg_recoveries"] += 1
        if (seg.hops == 0 and parent.host_node is not None
                and parent.host_node not in self.dead):
            self.stats["home_requeues"] += 1
            self._trace("recover", rid=parent.rid, seg=seg.rid,
                        mode="home-requeue", reason=reason)
            self._enqueue(parent, parent.host_node)
        else:
            self._trace("recover", rid=parent.rid, seg=seg.rid,
                        mode="retry", reason=reason)
            self._retry(parent, reason)

    def _lost_delivery(self, seg: Request, target: str) -> None:
        """A segment delivery never (usably) arrived.  The engine
        restored the worker thread eagerly when the message was built,
        so a *live* target holds state that must be abandoned (epochs
        released, ledger staging invalidated on both ends); a dead
        target lost it with the machine either way."""
        if seg.cancelled:
            self._discard_segment(target, seg)
            return
        self.active_segments.pop(seg.rid, None)
        if target not in self.dead and seg.thread is not None:
            self.engine.abandon_segment(self._host(target), seg.thread)
        seg.state = "lost"
        self._recover_parent(seg, "delivery-failed")

    def _discard_segment(self, node: str, seg: Request) -> None:
        """A cancelled segment surfaced on a live node: its parent was
        already recovered elsewhere, so release the worker-side state
        and ship nothing."""
        self.active_segments.pop(seg.rid, None)
        seg.state = "cancelled"
        self.stats["cancelled_segments"] += 1
        if seg.thread is not None and node not in self.dead:
            self.engine.abandon_segment(self._host(node), seg.thread)
        self._trace("discard_segment", rid=seg.rid, node=node)

    def _cancel_segment(self, seg: Request) -> None:
        """Void a live segment of a recovered parent: wherever it is
        (queued, running, riding a delivery), its holder discards it on
        next touch; if it is queued on a live node, pull it out now."""
        seg.cancelled = True
        node = seg.host_node
        if node is not None and node not in self.dead:
            store = self.stores.get(node)
            if store is not None and store.remove(seg):
                self._bump(node, -1, seg)
                self._discard_segment(node, seg)

    def _retry(self, req: Request, reason: str) -> None:
        """Restart ``req`` from scratch on a live node: cancel its live
        segments, drop its namespace (both the fresh spawn and any
        zombie worker state re-key under a clean ``req{rid}``), reset
        the execution state, and requeue — bounded by ``max_retries``,
        after which the request fails visibly rather than looping."""
        for seg in [s for s in self.active_segments.values()
                    if s.parent is req]:
            self._cancel_segment(seg)
        req.retries += 1
        if req.retries > self.max_retries:
            req.finished_at = self.env.now
            self._trace("fail", rid=req.rid, error=reason)
            self._fail(req, reason)
            return
        self.stats["retries"] += 1
        self._drop_namespace(req, retire=True)
        req.thread = None
        req.namespace = None
        req.host_node = None
        req.hops = 0
        req.instrs = 0
        target = self._place_live(req)
        self._trace("retry", rid=req.rid, attempt=req.retries,
                    reason=reason, node=target)
        self._enqueue(req, target)

    def _place_live(self, req: Request) -> str:
        """Placement that never lands on a dead node: re-ask the policy
        (its cursor keeps advancing deterministically) a bounded number
        of times, then fall back to the front — which cannot crash."""
        node = self.placement.place(self, req)
        for _ in range(len(self.node_names)):
            if node not in self.dead:
                return node
            node = self.placement.place(self, req)
        return self.front

    # -- SOD offload -------------------------------------------------------

    def _sod_offload(self, node: str, req: Request, target: str) -> float:
        """Capture the hot thread's top frames (plus any batchable
        queued hot threads) and ship them to ``target``.  Returns the
        source node's capture time; transfer + restore ride a bulk
        delivery process so the source keeps serving.

        Batch victims are the queued started threads with the *most
        estimated remaining work* (unprofiled programs rank first:
        nothing suggests they are nearly done, and their depth already
        qualified them) — shipping a nearly-done thread buys less
        compute than its capture + wire + restore cost."""
        policy = self.offload
        home = self._host(node)
        machine = home.machine
        store = self.stores[node]
        candidates = []
        examined = 0
        for cand in store.items:
            if examined >= VICTIM_SCAN_WINDOW:
                break  # bounded scan: deep queues must not make one
                # offload decision O(queue length)
            examined += 1
            if cand.thread is None:
                continue  # pre-start descriptors travel by handoff
            if policy.victim_ok(self, cand):
                candidates.append(cand)
        if len(candidates) > policy.batch_limit - 1:
            inf = float("inf")

            def rank(c: Request):
                r = self.profile.remaining(c)
                return (-(inf if r is None else r), c.rid)

            candidates.sort(key=rank)
            candidates = candidates[:policy.batch_limit - 1]
        batch = [req]
        for cand in candidates:
            store.remove(cand)
            self._bump(node, -1, cand)
            batch.append(cand)
        nframes = max(1, min(
            policy.mig_frames,
            min(max_migratable(r.thread) for r in batch),
            min(r.depth - 1 for r in batch)))
        t0 = machine.clock
        try:
            if len(batch) == 1:
                worker, wt, rec = self.engine.migrate(
                    home, req.thread, target, nframes)
                pairs = [(req, wt, rec)]
            else:
                worker, results = self.engine.migrate_many(
                    home, [r.thread for r in batch], target, nframes)
                pairs = [(r, wt, rec)
                         for r, (wt, rec) in zip(batch, results)]
                self.stats["batched_threads"] += len(batch)
        except MigrationError:
            # Not capturable right now (finished during the MSP run,
            # pinned frame, ...): put everything back.  Completion
            # durations (write-back wire + apply) stay on the node's
            # virtual bill, like the main loop's done_dt.
            self.stats["offload_aborts"] += 1
            done_dt = 0.0
            requeue = []
            for r in batch:
                if r.thread.finished:
                    done_dt += self._on_finished(node, r)
                else:
                    r.state = "queued"
                    requeue.append(r)
                    self._bump(node, +1, r)
            store.put_many(requeue)
            return machine.clock - t0 + done_dt
        capture_dt = machine.clock - t0
        # Delivery timing: the whole bulk message must land before any
        # restore starts (per-record transfer_time is the bulk evenly
        # attributed, so summing recovers it), and restores run
        # sequentially on the worker — segment k is runnable only after
        # restores 1..k.
        bulk_wire = sum(rec.transfer_time for _r, _wt, rec in pairs)
        restored = 0.0
        segs: List[Tuple[Request, float]] = []
        for r, wt, rec in pairs:
            r.state = "remote"
            r.sod_offloads += 1
            self.stats["sod_offloads"] += 1
            restored += rec.restore_time + rec.worker_spawn_time
            seg = Request(rid=self._take_rid(), kind="segment", parent=r,
                          arrival=self.env.now, thread=wt,
                          host_node=target, nframes=nframes,
                          tenant=r.tenant)
            self.active_segments[seg.rid] = seg
            segs.append((seg, restored))
        self._trace("offload", src=node, dst=target,
                    segs=[(s.rid, s.parent.rid) for s, _ in segs])
        self._dispatch_bulk(node, target, segs, bulk_wire)
        return capture_dt

    def _seg_rehop(self, node: str, seg: Request, target: str) -> float:
        """Move a preempted segment one hop further along a Fig. 1c
        chain (engine :meth:`~repro.migration.sodee.SODEngine.
        rehop_segment`): its effects flush to the home first, the whole
        segment ships to ``target``, and a *new* segment request —
        same parent, same residual frame count, accumulated work
        carried over — rides a bulk delivery there.  Completion stays
        anchored to the home node: when the chain's last hop finishes,
        results return directly, not back through the chain.

        Returns the source hop's capture time (the node keeps serving
        while the transfer rides the link)."""
        home_host = self._host(seg.parent.host_node)
        src = self._host(node)
        machine = src.machine
        t0 = machine.clock
        try:
            worker, wt, rec = self.engine.rehop_segment(
                src, seg.thread, target, home_host)
        except MigrationError:
            # Not capturable right now (finished during the MSP run,
            # pinned frame, cross-home statics at the target...).
            self.stats["offload_aborts"] += 1
            done_dt = 0.0
            if seg.thread.finished:
                done_dt = self._on_finished(node, seg)
            else:
                seg.state = "queued"
                self._bump(node, +1, seg)
                self.stores[node].put(seg)
            return machine.clock - t0 + done_dt
        capture_dt = machine.clock - t0
        seg.state = "remote"  # this hop's request object is done
        seg.parent.sod_offloads += 1
        self.stats["seg_rehops"] += 1
        self.stats["sod_offloads"] += 1
        hop = Request(rid=self._take_rid(), kind="segment",
                      parent=seg.parent, arrival=self.env.now, thread=wt,
                      host_node=target, nframes=seg.nframes,
                      hops=seg.hops + 1, instrs=seg.instrs,
                      tenant=seg.tenant)
        self.active_segments.pop(seg.rid, None)
        self.active_segments[hop.rid] = hop
        self._trace("rehop", src=node, dst=target, seg=hop.rid,
                    rid=seg.parent.rid, hops=hop.hops)
        self._dispatch_bulk(
            node, target,
            [(hop, rec.restore_time + rec.worker_spawn_time)],
            rec.transfer_time)
        return capture_dt

    # -- plumbing ----------------------------------------------------------

    def _take_rid(self) -> int:
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def _enqueue(self, req: Request, node: str) -> None:
        if node in self.dead:
            # Central guard: no delivery path ever queues work onto a
            # crashed node.  A descriptor just re-places; a started
            # request's frames lived on a specific machine, so a dead
            # destination means its state is gone — full retry.
            if req.thread is None:
                node = self._place_live(req)
            else:
                self._retry(req, "node-crash")
                return
        req.state = "queued"
        if req.thread is None:
            req.host_node = node
        self._bump(node, +1, req)
        self.stores[node].put(req)

    def _host(self, node: str) -> Host:
        if node == self.front:
            return self.engine.host(node)
        # No eager object manager: a node serving only handed-off local
        # requests keeps fast dispatch; the engine attaches the manager
        # (and its write barrier) when a segment actually lands there.
        return self.engine.worker_host(node, self.engine.host(self.front),
                                       attach_objman=False)

    def busy_time(self, node: str) -> float:
        """Virtual CPU seconds this node's machine has consumed."""
        h = self.engine.hosts.get(node)
        return h.machine.clock if h is not None else 0.0

    # -- reporting ---------------------------------------------------------

    def report(self) -> ServeReport:
        served = [r for r in self.finished if r.state == "done"]
        failed = [r for r in self.finished if r.state == "failed"]
        submitted = len(self.requests)
        lat = sorted(r.finished_at - r.arrival for r in served)
        makespan = max((r.finished_at for r in self.finished), default=0.0)
        correct = sum(1 for r in served
                      if r.result == expected_request_result(r.spec))
        per_node: Dict[str, Dict[str, Any]] = {}
        for n in self.node_names:
            per_node[n] = {
                "served": sum(1 for r in served if r.host_node == n),
                "busy_s": self.busy_time(n),
                "cpu_weight": self.cluster.node(n).spec.cpu_weight,
            }
        stats = dict(self.stats)
        stats["gossip_rounds"] = self.load_index.gossip_rounds
        # Chaos layer: messages lost to injected faults.
        stats["dropped_messages"] = self.network.total_dropped()
        # Migration fast path: bytes the transfer caches kept off the
        # wire, and object revalidation hits across all workers.
        stats["bytes_saved"] = self.network.total_saved()
        stats["reval_hits"] = sum(
            h.objman.stats.reval_hits for h in self.engine.hosts.values()
            if h.objman is not None)
        # Preemption coverage: the worst quantum overshoot any node's VM
        # saw (instructions past the budget before a safepoint fired).
        stats["max_quantum_overshoot"] = max(
            (h.machine.max_quantum_overshoot
             for h in self.engine.hosts.values()), default=0)
        # Tier-2 JIT activity across every node's VM.
        hosts = self.engine.hosts.values()
        stats["tier2_compiles"] = sum(h.machine.jit_compiles for h in hosts)
        stats["tier2_deopts"] = sum(h.machine.jit_deopts for h in hosts)
        stats["tier2_guard_bails"] = sum(
            h.machine.jit_guard_bails for h in hosts)
        if isinstance(self.admission, AdaptiveShed):
            # Control-loop telemetry (static admission adds no keys, so
            # pre-tenant reports keep their exact shape).
            stats["adaptive_threshold"] = self.admission.threshold
            stats["adaptive_down"] = self.admission.adjust_down
            stats["adaptive_up"] = self.admission.adjust_up
            stats["fair_sheds"] = self.admission.fair_sheds
        tenant_blocks: Dict[str, Dict[str, Any]] = {}
        for name in self.tenant_stats:
            tlat = sorted(self._tenant_lat.get(name, []))

            def tpct(p: float) -> float:
                return tlat[int(p * (len(tlat) - 1))] if tlat else 0.0

            block: Dict[str, Any] = dict(self.tenant_stats[name])
            block["latency_s"] = {
                "mean": sum(tlat) / len(tlat) if tlat else 0.0,
                "p50": tpct(0.50), "p95": tpct(0.95),
                "max": tlat[-1] if tlat else 0.0,
            }
            tenant_blocks[name] = block

        def pct(p: float) -> float:
            return lat[int(p * (len(lat) - 1))] if lat else 0.0
        return ServeReport(
            n_nodes=len(self.node_names), submitted=submitted,
            served=len(served), failed=len(failed),
            unserved=submitted - len(self.finished),
            correct=correct, makespan=makespan,
            throughput=(len(served) / makespan) if makespan > 0 else 0.0,
            latency_mean=sum(lat) / len(lat) if lat else 0.0,
            latency_p50=pct(0.50), latency_p95=pct(0.95),
            latency_max=lat[-1] if lat else 0.0,
            per_node=per_node, stats=stats,
            quantum=self.quantum, tenants=tenant_blocks)


# -- one-call sweep entry ------------------------------------------------------

_PLACEMENTS = {
    "round-robin": WeightedRoundRobinPlacement,
    "front-door": FrontDoorPlacement,
}

_OFFLOADS = {
    "queue-depth": QueueDepthPolicy,
    "clock-pressure": ClockPressurePolicy,
    "none": lambda: None,
}


def build_serving(mix: str = "parallel", n_nodes: int = 4,
                  n_requests: int = 32, seed: int = 7,
                  quantum: int = 2500, interarrival: float = 0.0,
                  placement: Union[str, Placement] = "round-robin",
                  offload: Union[str, OffloadPolicy, None] = "queue-depth",
                  cpu_weights: Optional[List[float]] = None,
                  cost: Optional[CostModel] = None,
                  rack_size: int = 4,
                  staleness: float = DEFAULT_STALENESS,
                  isolation: str = "auto",
                  admission: Optional[Any] = None,
                  fault_plan: Optional[Any] = None,
                  tracer: Optional[Any] = None,
                  max_retries: int = 3,
                  tenants: Optional[TenantSet] = None,
                  arrival_rate: Optional[float] = None
                  ) -> Tuple["ClusterScheduler", LoadGenerator]:
    """Build a ready-to-run (scheduler, load generator) pair for a
    named mix on a fresh ``serve_cluster(n_nodes)`` — the shared
    construction path of :func:`serve_mix` and the chaos layer's
    record/replay runner (which needs the scheduler itself for the
    per-request summary, not just the report)."""
    mixobj = MIXES[mix]
    cluster = serve_cluster(n_nodes, cpu_weights=cpu_weights,
                            rack_size=rack_size)
    if isinstance(placement, str):
        placement = _PLACEMENTS[placement]()
    if isinstance(offload, str):
        offload = _OFFLOADS[offload]()
    sched = ClusterScheduler(cluster, serve_classpath(mixobj.programs()),
                             cost=cost, quantum=quantum,
                             placement=placement, offload=offload,
                             staleness=staleness, isolation=isolation,
                             admission=admission, tracer=tracer,
                             max_retries=max_retries, tenants=tenants)
    if fault_plan is not None:
        # Imported lazily: repro.chaos imports this module for the
        # trace runner, so a top-level import would be circular.
        from repro.chaos.injector import ChaosInjector
        ChaosInjector(sched, fault_plan).start()
    load = LoadGenerator(mixobj, n_requests, seed=seed,
                         interarrival=interarrival,
                         tenants=tenants, arrival_rate=arrival_rate)
    return sched, load


def serve_mix(mix: str = "parallel", n_nodes: int = 4,
              n_requests: int = 32, seed: int = 7,
              quantum: int = 2500, interarrival: float = 0.0,
              placement: Union[str, Placement] = "round-robin",
              offload: Union[str, OffloadPolicy, None] = "queue-depth",
              cpu_weights: Optional[List[float]] = None,
              cost: Optional[CostModel] = None,
              rack_size: int = 4,
              staleness: float = DEFAULT_STALENESS,
              isolation: str = "auto",
              admission: Optional[Any] = None,
              fault_plan: Optional[Any] = None,
              tracer: Optional[Any] = None,
              max_retries: int = 3,
              tenants: Optional[TenantSet] = None,
              arrival_rate: Optional[float] = None) -> ServeReport:
    """Serve ``n_requests`` drawn from a named mix on a fresh
    ``serve_cluster(n_nodes)`` and return the report.  Deterministic:
    same arguments (fault plan and tenant set included), same report."""
    sched, load = build_serving(
        mix=mix, n_nodes=n_nodes, n_requests=n_requests, seed=seed,
        quantum=quantum, interarrival=interarrival, placement=placement,
        offload=offload, cpu_weights=cpu_weights, cost=cost,
        rack_size=rack_size, staleness=staleness, isolation=isolation,
        admission=admission, fault_plan=fault_plan, tracer=tracer,
        max_retries=max_retries, tenants=tenants, arrival_rate=arrival_rate)
    rep = sched.serve(load)
    rep.mix = mix
    rep.seed = seed
    return rep
