"""Admission placement and offload policies.

Placement decides where a freshly admitted request first queues;
offload policies decide when a node is hot enough to push work away —
either *handing off* a request that has not started yet (cheap: only a
descriptor crosses the wire) or *SOD-offloading* the top frames of a
running thread (the paper's stack-on-demand migration, executed through
the engine's capture/transfer/restore machinery).

All decisions read only scheduler state that is a deterministic
function of the run so far (queue depths, machine clocks, topology), so
scheduler runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

# -- load accounting -----------------------------------------------------------


def weighted_load(sched, node: str, extra: int = 0) -> float:
    """Runnable-or-imminent threads on ``node`` per unit of serving
    capacity: the queue, the running slot, deliveries already in flight
    toward the node (so simultaneous offload decisions don't dogpile
    one idle target), and ``extra`` — work the caller knows about but
    has already popped from the queue (the request in hand)."""
    busy = 1 if sched.running.get(node) is not None else 0
    in_flight = sched.pending.get(node, 0)
    return (len(sched.stores[node]) + busy + in_flight + extra) \
        / sched.cluster.node(node).spec.cpu_weight


def pick_underloaded(sched, src: str, src_load: float,
                     min_gap: float) -> Optional[str]:
    """The best offload target seen from ``src``: the least-loaded node,
    ties broken by link latency from ``src`` (topology-aware: same-rack
    nodes win over cross-rack ones) and then by name.  Returns None
    unless the target is at least ``min_gap`` weighted threads below
    ``src``."""
    best: Optional[str] = None
    best_key = None
    for node in sched.node_names:
        if node == src:
            continue
        key = (weighted_load(sched, node),
               sched.cluster.latency(src, node), node)
        if best_key is None or key < best_key:
            best, best_key = node, key
    if best is None or src_load - best_key[0] < min_gap:
        return None
    return best


# -- admission placement -------------------------------------------------------


class Placement:
    """Chooses the node a freshly admitted request first queues on."""

    def place(self, sched, req) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class FrontDoorPlacement(Placement):
    """Everything arrives at one front node (a single ingress box); the
    offload policies are then the only path to the rest of the cluster —
    the pure elasticity scenario."""

    def __init__(self, node: Optional[str] = None):
        self.node = node

    def place(self, sched, req) -> str:
        return self.node or sched.front


class WeightedRoundRobinPlacement(Placement):
    """Smooth weighted round-robin over node capacities (the classic
    nginx algorithm): each round every node gains its weight, the
    richest node wins the request and pays the total back."""

    def __init__(self):
        self._credit = {}

    def place(self, sched, req) -> str:
        names = sched.node_names
        if set(self._credit) != set(names):
            # fresh scheduler (or a reused instance on a different
            # cluster): start the credit cycle over
            self._credit = {n: 0.0 for n in names}
        total = 0.0
        for n in names:
            w = sched.cluster.node(n).spec.cpu_weight
            self._credit[n] += w
            total += w
        best = max(names, key=lambda n: self._credit[n])
        self._credit[best] -= total
        return best


# -- offload policies ----------------------------------------------------------


@dataclass
class OffloadPolicy:
    """Base offload policy: common knobs plus the depth-based handoff
    rule every policy shares (a pre-start request carries no clock, so
    queue depth is the only signal it can be judged by).  Subclasses
    define *when a running thread* is worth SOD-offloading.

    Attributes:
        min_depth: frames a thread needs before SOD offload is
            considered (the residual stack must keep >= 1 frame).
        mig_frames: how many top frames a SOD offload ships.
        max_hops: pre-start handoffs a request may take before it must
            run where it is (prevents ping-ponging descriptors).
        batch_limit: max threads captured into one bulk offload message
            (see :meth:`repro.migration.sodee.SODEngine.migrate_many`).
        depth_threshold: weighted runnable count at which a node is hot.
        min_gap: how many weighted threads lighter a target must be.
    """

    min_depth: int = 4
    mig_frames: int = 3
    max_hops: int = 2
    batch_limit: int = 3
    depth_threshold: float = 2.0
    min_gap: float = 2.0

    def handoff_target(self, sched, node: str) -> Optional[str]:
        load = weighted_load(sched, node, extra=1)
        if load < self.depth_threshold:
            return None
        return pick_underloaded(sched, node, load, self.min_gap)

    def offload_target(self, sched, node: str, req) -> Optional[str]:
        return None


@dataclass
class QueueDepthPolicy(OffloadPolicy):
    """Queue-depth trigger: a node is hot when its weighted runnable
    count reaches ``depth_threshold``; work moves to a node at least
    ``min_gap`` weighted threads lighter."""

    def offload_target(self, sched, node: str, req) -> Optional[str]:
        if req.kind != "request" or req.depth < self.min_depth:
            return None
        load = weighted_load(sched, node, extra=1)
        if load < self.depth_threshold:
            return None
        return pick_underloaded(sched, node, load, self.min_gap)


@dataclass
class ClockPressurePolicy(OffloadPolicy):
    """Clock-pressure trigger: a node is hot when its accumulated busy
    time runs ``pressure_ratio`` times ahead of the cluster mean (its
    backlog is time, not queue slots — catches few-but-heavy threads
    that a queue-depth trigger misses).  Handoff stays depth-based
    (inherited): pre-start requests carry no clock yet."""

    pressure_ratio: float = 1.5
    min_gap: float = 1.0

    def offload_target(self, sched, node: str, req) -> Optional[str]:
        if req.kind != "request" or req.depth < self.min_depth:
            return None
        busies = [sched.busy_time(n) for n in sched.node_names]
        mean = sum(busies) / len(busies)
        if mean <= 0 or sched.busy_time(node) < self.pressure_ratio * mean:
            return None
        load = weighted_load(sched, node, extra=1)
        return pick_underloaded(sched, node, load, self.min_gap)
