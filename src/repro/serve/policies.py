"""Admission placement and offload policies.

Placement decides where a freshly admitted request first queues;
offload policies decide when a node is hot enough to push work away —
either *handing off* a request that has not started yet (cheap: only a
descriptor crosses the wire) or *SOD-offloading* the top frames of a
running thread (the paper's stack-on-demand migration, executed through
the engine's capture/transfer/restore machinery).

All load questions are answered by the scheduler's incremental
:class:`repro.serve.loadindex.LoadIndex` — O(1) per-node load reads and
O(log n) target picks — never by scanning the cluster.  Decisions read
only state that is a deterministic function of the run so far (counters,
machine clocks, topology, virtual time), so scheduler runs replay
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# -- load accounting -----------------------------------------------------------


def weighted_load(sched, node: str, extra: int = 0) -> float:
    """Runnable-or-imminent threads on ``node`` per unit of serving
    capacity: the queue, the running slot, deliveries already in flight
    toward the node (so simultaneous offload decisions don't dogpile
    one idle target), and ``extra`` — work the caller knows about but
    has already popped from the queue (the request in hand).

    O(1): reads the event-driven counter; the from-scratch definition
    it must always agree with is
    :func:`repro.serve.loadindex.recompute_load` (property-tested)."""
    return sched.load_index.load(node, extra)


# -- admission placement -------------------------------------------------------


class Placement:
    """Chooses the node a freshly admitted request first queues on."""

    def place(self, sched, req) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class FrontDoorPlacement(Placement):
    """Everything arrives at one front node (a single ingress box); the
    offload policies are then the only path to the rest of the cluster —
    the pure elasticity scenario."""

    def __init__(self, node: Optional[str] = None):
        self.node = node

    def place(self, sched, req) -> str:
        return self.node or sched.front


class WeightedRoundRobinPlacement(Placement):
    """Smooth weighted round-robin over node capacities (the classic
    nginx algorithm): each round every node gains its weight, the
    richest node wins the request and pays the total back.

    Node weights are fixed for a scheduler's lifetime, and with
    integerized weights the algorithm is periodic (over one period of
    ``sum(weights)`` picks every node wins exactly its weight's worth
    and the credits return to zero) — so the cycle is precomputed once
    and each admission is an O(1) cursor step.  Sweeping every node's
    credit per request would be an O(n) hot-path scan at cluster
    scale, exactly what this PR removes elsewhere."""

    #: longest precomputed pick cycle; weight ratios whose exact period
    #: would exceed it are rounded to a 255-level approximation instead
    MAX_CYCLE = 4096

    def __init__(self):
        self._sched_ref: Optional[int] = None
        self._key: Optional[tuple] = None
        self._cycle: list = []
        self._pos = 0

    def place(self, sched, req) -> str:
        # A scheduler's cluster and weights are immutable for its
        # lifetime, so the common case is an identity check; the full
        # (names, weights) key is only rebuilt when this placement
        # instance moves to a different scheduler.
        if id(sched) != self._sched_ref:
            names = sched.node_names
            weights = tuple(sched.cluster.node(n).spec.cpu_weight
                            for n in names)
            key = (tuple(names), weights)
            if self._key != key:
                self._build_cycle(names, weights)
                self._key = key
            self._sched_ref = id(sched)
        node = self._cycle[self._pos]
        self._pos = (self._pos + 1) % len(self._cycle)
        return node

    def _build_cycle(self, names, weights) -> None:
        from fractions import Fraction
        from math import gcd
        self._pos = 0
        # Integerize weight *ratios* (relative to the lightest node, so
        # a tiny absolute weight keeps its tiny share instead of being
        # floored to parity with the rest).
        lightest = min(weights)
        ratios = [w / lightest for w in weights]
        fracs = [Fraction(r).limit_denominator(64) for r in ratios]
        denom = 1
        for f in fracs:
            denom = denom * f.denominator // gcd(denom, f.denominator)
        ints = [max(1, int(f * denom)) for f in fracs]
        common = 0
        for w in ints:
            common = gcd(common, w)
        ints = [w // common for w in ints]
        if sum(ints) > self.MAX_CYCLE:
            # Extreme ratios: approximate on a shrinking scale until
            # the period actually fits the cap (at scale 1 every node
            # rounds to weight >= 1, so the period bottoms out at n —
            # node counts beyond MAX_CYCLE are not a supported regime).
            top = max(ratios)
            scale = 255.0
            while True:
                ints = [max(1, round(r * scale / top)) for r in ratios]
                common = 0
                for w in ints:
                    common = gcd(common, w)
                ints = [w // common for w in ints]
                total = sum(ints)
                if total <= self.MAX_CYCLE or scale <= 1.0:
                    break
                scale = max(1.0, scale * self.MAX_CYCLE / (total * 1.05))
        total = sum(ints)
        credit = {n: 0 for n in names}
        cycle = []
        for _ in range(total):
            best = None
            best_c = 0
            for n, w in zip(names, ints):
                c = credit[n] = credit[n] + w
                if best is None or c > best_c:
                    best, best_c = n, c
            credit[best] -= total
            cycle.append(best)
        self._cycle = cycle


# -- admission control ---------------------------------------------------------


@dataclass
class ShedWhenSaturated:
    """Front-door admission stub: when the gossip digest reports every
    rack saturated (each rack's least-loaded node already at or above
    ``max_node_load`` weighted threads), the scheduler *sheds* the
    request — counted in ``stats["shed"]`` — instead of queueing
    unboundedly.  A shed request is finished-on-arrival with state
    ``"shed"``: the client got a fast overload signal rather than an
    unbounded queueing delay.

    This is deliberately a stub of real overload control: the full
    open-loop Poisson sweep past saturation (latency/goodput knees,
    adaptive thresholds) stays a future PR; the hook and accounting
    land here so that sweep has something to drive."""

    max_node_load: float = 8.0

    def admit(self, sched, req) -> bool:
        return not sched.load_index.saturated(
            sched.env.now, self.max_node_load)


@dataclass
class AdaptiveShed:
    """Adaptive overload control: learn the latency/goodput knee
    online and shed per-tenant by priority with hysteresis.

    The static stub has to be told ``max_node_load`` — picked wrong it
    either sheds work a healthy cluster could serve or admits until
    queueing delay destroys every SLO.  This controller *learns* the
    threshold from observed end-to-end latency, AIMD-style:

    * every completed request's sojourn time feeds a sliding window;
      each full ``window``, the exact windowed P95 is compared to the
      ``slo`` target — above it the admit threshold multiplies down
      (``decrease``), comfortably below it (``margin * slo``) the
      threshold multiplies back up (``increase``), bounded to
      ``[min_load, max_load]``.  Multiplicative decrease finds the
      knee in a few windows even when the initial guess is far off;
      the gentle increase reclaims capacity after the storm passes.
      (The long-horizon P² :class:`~repro.serve.loadindex.
      StreamingQuantile` tracks the *whole-run* P95 for reporting; the
      control loop needs a windowed estimate that forgets the past, so
      it keeps an exact small window instead.)
    * shedding is **per-tenant by priority**: a tenant at priority
      rank ``r`` is shed once the digest reports saturation at
      ``threshold * priority_scale**r`` — lower-priority tenants
      (larger rank) are refused earlier, so as overload deepens the
      cluster degrades gracefully tier by tier instead of collapsing
      for everyone at once.
    * each tier's shed decision carries **hysteresis**: once tier
      ``r`` sheds, it keeps shedding until load falls below
      ``hysteresis`` times its bar — without the band, load hovering
      at the threshold flaps admit/shed on alternating requests.
    * a **fair-share cap** bounds any single tenant to ``fair_factor``
      times its weight-share of the cluster's runnable capacity
      (``threshold * live_capacity`` weighted threads), floored at
      ``min_tenant_slots`` so small tenants always get a foothold.
      This is what an abusive tenant hits: its own backlog saturates
      its cap and *its* requests shed while everyone else's latency
      stays at the knee.  (``fair_factor`` > 1 keeps the cluster
      work-conserving when others are idle.)

    All state is a deterministic function of the completed-request
    sequence, so runs replay bit-identically.
    """

    #: end-to-end (arrival -> completion) P95 latency target, virtual
    #: seconds — the knee the controller steers the cluster to
    slo: float = 0.1
    #: initial per-node weighted-load admit threshold (the stub's knob;
    #: the controller moves it from here)
    init_load: float = 8.0
    min_load: float = 1.0
    max_load: float = 64.0
    #: completed requests per control window
    window: int = 32
    #: multiplicative decrease / increase applied to the threshold
    decrease: float = 0.7
    increase: float = 1.15
    #: the windowed P95 must fall below ``margin * slo`` before the
    #: threshold is allowed back up (a dead band against breathing)
    margin: float = 0.8
    #: a shedding tier readmits only below ``hysteresis`` * its bar
    hysteresis: float = 0.8
    #: per-priority-rank threshold scaling (rank r's bar is
    #: ``threshold * priority_scale**r``)
    priority_scale: float = 0.7
    #: fair-share cap multiplier (> 1 = work-conserving headroom)
    fair_factor: float = 2.0
    #: every tenant may always hold at least this many runnable slots
    min_tenant_slots: int = 4

    #: current admit threshold (mutated by the control loop)
    threshold: float = field(init=False)
    #: control-loop activity counters (reported in run stats)
    adjust_down: int = field(init=False, default=0)
    adjust_up: int = field(init=False, default=0)
    fair_sheds: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.threshold = self.init_load
        self._lat: List[float] = []
        #: priority ranks currently shedding (the hysteresis state)
        self._shedding: Dict[int, bool] = {}

    # -- the admit decision -------------------------------------------------

    def admit(self, sched, req) -> bool:
        tenants = getattr(sched, "tenants", None)
        tenant = tenants.get(req.tenant) if tenants else None
        index = sched.load_index
        if tenant is not None and tenants.total_weight > 0:
            cap = max(float(self.min_tenant_slots),
                      self.fair_factor * tenants.share(tenant.name)
                      * self.threshold * index.live_capacity)
            if index.tenant_count.get(tenant.name, 0) >= cap:
                self.fair_sheds += 1
                return False
        rank = tenant.priority if tenant is not None else 0
        bar = self.threshold * (self.priority_scale ** rank)
        now = sched.env.now
        if self._shedding.get(rank):
            if index.saturated(now, bar * self.hysteresis):
                return False
            self._shedding[rank] = False
            return True
        if index.saturated(now, bar):
            self._shedding[rank] = True
            return False
        return True

    # -- the control loop ---------------------------------------------------

    def observe(self, sched, req) -> None:
        """Fold one *served* request's end-to-end latency into the
        control window (the scheduler calls this on completion; shed
        and failed requests never reach it — they carry no service
        latency)."""
        self._lat.append(req.finished_at - req.arrival)
        if len(self._lat) < self.window:
            return
        xs = sorted(self._lat)
        self._lat.clear()
        p95 = xs[min(len(xs) - 1, int(0.95 * (len(xs) - 1) + 0.5))]
        if p95 > self.slo:
            new = max(self.min_load, self.threshold * self.decrease)
            if new != self.threshold:
                self.adjust_down += 1
            self.threshold = new
        elif p95 < self.margin * self.slo:
            new = min(self.max_load, self.threshold * self.increase)
            if new != self.threshold:
                self.adjust_up += 1
            self.threshold = new


# -- offload policies ----------------------------------------------------------


@dataclass
class OffloadPolicy:
    """Base offload policy: common knobs plus the depth-based handoff
    rule every policy shares (a pre-start request carries no clock, so
    queue depth is the only signal it can be judged by).  Subclasses
    define *when a running thread* is worth SOD-offloading.

    Attributes:
        min_depth: frames a thread needs before SOD offload is
            considered (the residual stack must keep >= 1 frame).
        mig_frames: how many top frames a SOD offload ships.
        max_hops: pre-start handoffs a request may take before it must
            run where it is (prevents ping-ponging descriptors).
        batch_limit: max threads captured into one bulk offload message
            (see :meth:`repro.migration.sodee.SODEngine.migrate_many`).
        depth_threshold: weighted runnable count at which a node is hot.
        min_gap: how many weighted threads lighter a target must be.
        min_remaining_quanta: a running thread is only worth shipping if
            its *estimated remaining work* (learned online, see
            :class:`repro.serve.loadindex.WorkProfile`) is at least this
            many scheduler quanta — a deep-but-nearly-done thread
            finishes at home sooner than its capture+transfer+restore
            would take.  Programs with no profile yet are always
            eligible (fall back to the depth rule).
        max_seg_hops: chain hops a migrated *segment* may take beyond
            its first offload (the paper's Fig. 1c): an overloaded
            worker re-offloads a preempted segment onward, still
            anchored to the home node (completion returns directly,
            never back through the chain).  0 keeps the single-hop
            scheduler.
    """

    min_depth: int = 4
    mig_frames: int = 3
    max_hops: int = 2
    batch_limit: int = 3
    depth_threshold: float = 2.0
    min_gap: float = 2.0
    min_remaining_quanta: float = 1.0
    max_seg_hops: int = 0
    #: a chain hop re-pays capture + wire + restore for work that was
    #: already moved once, so it must clear a higher bar than a first
    #: offload: the hop node this much hotter than ``depth_threshold``,
    #: the target this much lighter than ``min_gap`` alone, and the
    #: remaining work worth this many times the first-offload minimum
    rehop_threshold_mult: float = 2.0
    rehop_gap_extra: float = 2.0
    rehop_remaining_mult: float = 2.0

    def handoff_target(self, sched, node: str) -> Optional[str]:
        load = weighted_load(sched, node, extra=1)
        if load < self.depth_threshold:
            return None
        return sched.pick_underloaded(node, load, self.min_gap)

    def victim_ok(self, sched, req) -> bool:
        """Shared victim filter: only started, deep-enough requests
        whose estimated remaining work justifies the migration."""
        if req.kind != "request" or req.depth < self.min_depth:
            return False
        remaining = sched.profile.remaining(req)
        if (remaining is not None
                and remaining < self.min_remaining_quanta * sched.quantum):
            sched.stats["victim_vetoes"] += 1
            return False
        return True

    def offload_target(self, sched, node: str, req) -> Optional[str]:
        return None

    def rehop_ok(self, sched, seg) -> bool:
        """Is a preempted segment worth moving another hop?  Its chain
        budget must allow it, and its estimated remaining work —
        parent's pre-offload quanta plus the segment's own, counted
        against the program's P75 — must justify re-paying
        capture + transfer + restore (a stiffer bar than the first
        offload's: ``rehop_remaining_mult``)."""
        if seg.kind != "segment" or seg.hops >= self.max_seg_hops:
            return False
        remaining = sched.profile.remaining(seg)
        if (remaining is not None
                and remaining < self.rehop_remaining_mult
                * self.min_remaining_quanta * sched.quantum):
            sched.stats["victim_vetoes"] += 1
            return False
        return True

    def rehop_target(self, sched, node: str, seg) -> Optional[str]:
        """Where a Fig. 1c chain continues: the same gossip-digest pick
        the other decisions ride (O(log n)); None when this hop is not
        hot enough or no target light enough to clear the chain bar."""
        if self.max_seg_hops <= 0 or not self.rehop_ok(sched, seg):
            return None
        load = weighted_load(sched, node, extra=1)
        if load < self.rehop_threshold_mult * self.depth_threshold:
            return None
        return sched.pick_underloaded(
            node, load, self.min_gap + self.rehop_gap_extra)


@dataclass
class QueueDepthPolicy(OffloadPolicy):
    """Queue-depth trigger: a node is hot when its weighted runnable
    count reaches ``depth_threshold``; work moves to a node at least
    ``min_gap`` weighted threads lighter."""

    def offload_target(self, sched, node: str, req) -> Optional[str]:
        if not self.victim_ok(sched, req):
            return None
        load = weighted_load(sched, node, extra=1)
        if load < self.depth_threshold:
            return None
        return sched.pick_underloaded(node, load, self.min_gap)


@dataclass
class ClockPressurePolicy(OffloadPolicy):
    """Clock-pressure trigger: a node is hot when its accumulated guest
    CPU time runs ``pressure_ratio`` times ahead of the cluster mean
    (its backlog is time, not queue slots — catches few-but-heavy
    threads that a queue-depth trigger misses).  The per-node and
    cluster-total CPU counters are event-driven (bumped once per
    quantum), so the pressure check is O(1), not a cluster scan.
    Handoff stays depth-based (inherited): pre-start requests carry no
    clock yet."""

    pressure_ratio: float = 1.5
    min_gap: float = 1.0

    def offload_target(self, sched, node: str, req) -> Optional[str]:
        if not self.victim_ok(sched, req):
            return None
        mean = sched.cpu_total / len(sched.node_names)
        if mean <= 0 or sched.cpu_used[node] < self.pressure_ratio * mean:
            return None
        load = weighted_load(sched, node, extra=1)
        return sched.pick_underloaded(node, load, self.min_gap)
