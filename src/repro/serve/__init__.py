"""The elastic serving layer (ROADMAP north star: serve heavy traffic).

Builds on everything below it: the discrete-event kernel schedules node
processes, the cluster substrate prices links and capacities, the VM's
safepoint-polled quantum preemption time-slices many guest threads per
node, and the SOD machinery ships the top frames of hot threads to
underloaded nodes mid-run.

* :mod:`repro.serve.loadgen` — requests and the seeded load generator.
* :mod:`repro.serve.loadindex` — the incremental O(log n) load indexes
  (event-driven counters, per-rack heaps, gossip digest, work profile).
* :mod:`repro.serve.policies` — admission placement and offload policies.
* :mod:`repro.serve.tenants` — tenants: the unit of multi-tenant QoS.
* :mod:`repro.serve.wfq` — weighted fair run queues (stride scheduling).
* :mod:`repro.serve.scheduler` — the cluster scheduler itself.
"""

from repro.serve.loadgen import LoadGenerator, Request
from repro.serve.loadindex import (DEFAULT_STALENESS, LoadIndex, WorkProfile,
                                   naive_pick, recompute_load)
from repro.serve.policies import (AdaptiveShed, ClockPressurePolicy,
                                  FrontDoorPlacement, OffloadPolicy,
                                  Placement, QueueDepthPolicy,
                                  ShedWhenSaturated,
                                  WeightedRoundRobinPlacement)
from repro.serve.scheduler import (ClusterScheduler, ServeReport,
                                   build_serving, serve_mix)
from repro.serve.tenants import Tenant, TenantSet, parse_tenants
from repro.serve.wfq import FairStore

__all__ = [
    "LoadGenerator", "Request",
    "LoadIndex", "WorkProfile", "DEFAULT_STALENESS",
    "naive_pick", "recompute_load",
    "Placement", "FrontDoorPlacement", "WeightedRoundRobinPlacement",
    "OffloadPolicy", "QueueDepthPolicy", "ClockPressurePolicy",
    "ShedWhenSaturated", "AdaptiveShed",
    "Tenant", "TenantSet", "parse_tenants", "FairStore",
    "ClusterScheduler", "ServeReport", "build_serving", "serve_mix",
]
