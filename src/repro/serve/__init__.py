"""The elastic serving layer (ROADMAP north star: serve heavy traffic).

Builds on everything below it: the discrete-event kernel schedules node
processes, the cluster substrate prices links and capacities, the VM's
safepoint-polled quantum preemption time-slices many guest threads per
node, and the SOD machinery ships the top frames of hot threads to
underloaded nodes mid-run.

* :mod:`repro.serve.loadgen` — requests and the seeded load generator.
* :mod:`repro.serve.policies` — admission placement and offload policies.
* :mod:`repro.serve.scheduler` — the cluster scheduler itself.
"""

from repro.serve.loadgen import LoadGenerator, Request
from repro.serve.policies import (ClockPressurePolicy, FrontDoorPlacement,
                                  OffloadPolicy, Placement, QueueDepthPolicy,
                                  WeightedRoundRobinPlacement)
from repro.serve.scheduler import ClusterScheduler, ServeReport, serve_mix

__all__ = [
    "LoadGenerator", "Request",
    "Placement", "FrontDoorPlacement", "WeightedRoundRobinPlacement",
    "OffloadPolicy", "QueueDepthPolicy", "ClockPressurePolicy",
    "ClusterScheduler", "ServeReport", "serve_mix",
]
