"""Weighted fair queueing across tenants (stride scheduling).

A node's run queue used to be one FIFO :class:`repro.sim.kernel.Store`:
whoever enqueued the most work got the most quanta, so one abusive
tenant flooding the front door could starve everyone else's latency on
every node it touched.  :class:`FairStore` keeps the Store interface
(``get``/``put``/``put_many``/``remove``/``items``/``len``) but
maintains one FIFO *per tenant* and dequeues by **virtual finish
time** — classic stride scheduling over :class:`~repro.serve.tenants.
Tenant.weight`:

* each tenant carries a ``pass`` value; dequeuing one of its requests
  advances the pass by ``1 / weight`` (its *stride*), so a tenant with
  twice the weight is selected twice as often when both have backlog;
* selection is the backlogged tenant with the smallest ``(pass,
  name)`` — the name tie-break keeps runs bit-deterministic;
* a tenant that goes idle forfeits banked credit: on re-activation its
  pass is clamped up to the queue's virtual time, the standard fix
  that stops a sleeping tenant from hoarding an unbounded burst
  entitlement.

One dequeue corresponds to one scheduler quantum (an unfinished
request re-enqueues after its quantum), so per-dequeue charging *is*
per-quantum CPU charging to within a partial final quantum.  Migrated
segments carry their parent's tenant, so offloading a tenant's work to
another node never launders it into a different tenant's share there.

Requests without a tenant (and control sentinels like the scheduler's
``_STOP``) ride a default bucket with ``default_weight``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, Iterator, Optional

#: bucket key for items that carry no tenant (root traffic, sentinels)
_ROOT = ""

#: "no item" marker distinct from any queued item
_EMPTY = object()


class FairStore:
    """A per-tenant weighted fair run queue (Store-compatible)."""

    __slots__ = ("env", "name", "weights", "default_weight", "_queues",
                 "_pass", "_vt", "_getters", "_size")

    def __init__(self, env, name: str = "",
                 weights: Optional[Dict[str, float]] = None,
                 default_weight: float = 1.0):
        self.env = env
        self.name = name
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        #: per-tenant FIFO of queued items
        self._queues: Dict[str, deque] = {}
        #: per-tenant virtual pass (advances by stride per dequeue)
        self._pass: Dict[str, float] = {}
        #: queue virtual time: the pass of the last-scheduled tenant
        self._vt = 0.0
        self._getters: deque = deque()
        self._size = 0

    # -- bucket plumbing ----------------------------------------------------

    @staticmethod
    def _key(item: Any) -> str:
        return getattr(item, "tenant", None) or _ROOT

    def _stride(self, key: str) -> float:
        return 1.0 / self.weights.get(key, self.default_weight)

    def _charge(self, key: str, clamp: bool) -> None:
        """Advance ``key``'s pass by one stride.  ``clamp`` lifts a
        stale pass up to the current virtual time first — used when the
        item never queued (direct handoff to a blocked getter: the
        queue was empty, so there is no backlog entitlement to keep)."""
        p = self._pass.get(key, self._vt)
        if clamp and p < self._vt:
            p = self._vt
        self._vt = p
        self._pass[key] = p + self._stride(key)

    # -- Store interface ----------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def items(self) -> Iterator[Any]:
        """Queued items in scheduling order: tenants by ``(pass,
        name)``, FIFO within each tenant.  A lazy iterator — the
        bounded victim scan must not pay O(queue) to look at its
        window.  Do not mutate the store while iterating."""
        for key in sorted(self._queues,
                          key=lambda k: (self._pass.get(k, 0.0), k)):
            yield from self._queues[key]

    def put(self, item: Any) -> None:
        """Enqueue ``item`` under its tenant's bucket (wakes the oldest
        blocked getter directly when one is waiting)."""
        if self._getters:
            # Getters only wait while the store is empty, so fairness
            # is vacuous here; charge the stride and hand it over.
            self._charge(self._key(item), clamp=True)
            self._getters.popleft().succeed(item)
            return
        key = self._key(item)
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = deque()
        if not q:
            # (Re)activation: forfeit credit accumulated while idle.
            p = self._pass.get(key, 0.0)
            if p < self._vt:
                self._pass[key] = self._vt
            elif key not in self._pass:
                self._pass[key] = self._vt
        q.append(item)
        self._size += 1

    def put_many(self, items: Iterable[Any]) -> None:
        for item in items:
            self.put(item)

    def get(self):
        """An event firing with the next item by weighted fair order
        (immediately if anything is queued)."""
        ev = self.env.event(name=f"{self.name or 'fairstore'}.get")
        item = self._pop()
        if item is not _EMPTY:
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def _pop(self) -> Any:
        if not self._size:
            return _EMPTY
        best_key: Optional[str] = None
        best = None
        for key, q in self._queues.items():
            if not q:
                continue
            k = (self._pass.get(key, 0.0), key)
            if best is None or k < best:
                best, best_key = k, key
        q = self._queues[best_key]
        item = q.popleft()
        self._size -= 1
        self._charge(best_key, clamp=False)
        return item

    def remove(self, item: Any) -> bool:
        """Remove a specific queued item (handoff/victim stealing /
        crash drain).  Returns False if it is no longer queued."""
        q = self._queues.get(self._key(item))
        if q is None:
            return False
        try:
            q.remove(item)
        except ValueError:
            return False
        self._size -= 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        depths = {k: len(q) for k, q in self._queues.items() if q}
        return f"<FairStore {self.name!r} {depths}>"
