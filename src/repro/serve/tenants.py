"""Tenants: the unit of QoS in a multi-tenant serving cluster.

"Millions of users" means *tenants*, not an open firehose of anonymous
requests: traffic arrives on behalf of identified customers with
conflicting demand, and the cluster owes each of them an isolated
share — of CPU (weighted fair scheduling, :mod:`repro.serve.wfq`), of
admission (per-tenant shedding, :class:`repro.serve.policies.
AdaptiveShed`), and of per-request namespace state (each tenant owns a
bounded pool of pre-linked class-loader namespaces its non-reentrant
requests lease instead of paying a fresh ``req{rid}`` link on every
node they touch).

A :class:`Tenant` is pure configuration — everything mutable lives in
the scheduler — so a :class:`TenantSet` can ride a recorded trace and
replay byte-identically.

Semantics of the knobs:

* ``weight`` — the tenant's share of every node's CPU under weighted
  fair queueing, and its fair share of admission capacity.  A tenant
  with weight 2 gets twice the quanta of a tenant with weight 1 when
  both have backlog.
* ``priority`` — the *shedding* tier: 0 is shed last, larger numbers
  shed earlier as overload deepens (the adaptive controller scales its
  admit threshold down per priority rank).  Priority orders who is
  refused at the door; ``weight`` divides the CPU among those admitted.
* ``slo`` — the tenant's P95 latency target in virtual seconds
  (reporting/benchmark target; the adaptive controller's own knee
  target is its ``slo`` parameter).
* ``pool`` — how many pre-linked namespaces the tenant may keep warm
  (only non-reentrant programs use them); 0 disables pooling and
  falls back to per-request ``req{rid}`` namespaces.
* ``rate_factor`` — multiplies the load generator's base per-tenant
  arrival rate; the "abusive tenant" scenario is one tenant with
  ``rate_factor=10`` and everyone else at 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ClusterError


@dataclass(frozen=True)
class Tenant:
    """One tenant's QoS configuration (immutable)."""

    name: str
    weight: float = 1.0
    #: shedding tier: 0 = highest priority (shed last)
    priority: int = 0
    #: P95 latency target, virtual seconds (None = no declared SLO)
    slo: Optional[float] = None
    #: bound on the tenant's warm namespace pool (0 = no pooling)
    pool: int = 4
    #: arrival-rate multiplier for the load generator
    rate_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterError("tenant needs a non-empty name")
        if self.weight <= 0:
            raise ClusterError(
                f"tenant {self.name!r}: weight must be > 0, "
                f"got {self.weight}")
        if self.priority < 0:
            raise ClusterError(
                f"tenant {self.name!r}: priority must be >= 0, "
                f"got {self.priority}")
        if self.pool < 0:
            raise ClusterError(
                f"tenant {self.name!r}: pool must be >= 0, got {self.pool}")
        if self.rate_factor <= 0:
            raise ClusterError(
                f"tenant {self.name!r}: rate_factor must be > 0, "
                f"got {self.rate_factor}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "weight": self.weight,
                "priority": self.priority, "slo": self.slo,
                "pool": self.pool, "rate_factor": self.rate_factor}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Tenant":
        return cls(**d)


class TenantSet:
    """An ordered, name-keyed set of tenants.

    Order is declaration order and is part of the configuration (it
    breaks merge ties in the load generator), so a replayed trace sees
    the exact same schedule.  An *empty* TenantSet is equivalent to no
    tenants at all: the scheduler and load generator treat both as the
    single-tenant legacy mode (byte-identical serving)."""

    def __init__(self, tenants: Optional[List[Tenant]] = None):
        self._tenants: Dict[str, Tenant] = {}
        for t in tenants or []:
            if t.name in self._tenants:
                raise ClusterError(f"duplicate tenant {t.name!r}")
            self._tenants[t.name] = t

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def __bool__(self) -> bool:
        return bool(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def get(self, name: Optional[str]) -> Optional[Tenant]:
        return self._tenants.get(name) if name is not None else None

    def names(self) -> List[str]:
        return list(self._tenants)

    @property
    def total_weight(self) -> float:
        return sum(t.weight for t in self._tenants.values())

    def share(self, name: str) -> float:
        """The tenant's fair share of cluster capacity in [0, 1]."""
        return self._tenants[name].weight / self.total_weight

    def to_dict(self) -> List[Dict[str, Any]]:
        return [t.to_dict() for t in self._tenants.values()]

    @classmethod
    def from_dict(cls, rows: Optional[List[Dict[str, Any]]]
                  ) -> Optional["TenantSet"]:
        if rows is None:
            return None
        return cls([Tenant.from_dict(r) for r in rows])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TenantSet({list(self._tenants.values())!r})"


#: parse keys accepted by :func:`parse_tenants`
_PARSE_KEYS = {
    "w": ("weight", float), "weight": ("weight", float),
    "p": ("priority", int), "priority": ("priority", int),
    "slo": ("slo", float),
    "pool": ("pool", int),
    "r": ("rate_factor", float), "rate": ("rate_factor", float),
}


def parse_tenants(spec: str) -> TenantSet:
    """Parse the CLI tenant syntax into a :class:`TenantSet`.

    ``spec`` is comma-separated tenant entries, each
    ``name[:key=value]*`` with keys ``w``/``weight``, ``p``/
    ``priority``, ``slo``, ``pool``, and ``r``/``rate`` (rate factor):

    >>> ts = parse_tenants("gold:w=3:p=0,silver:w=2:p=1,free:w=1:p=2:r=10")
    >>> [t.name for t in ts]
    ['gold', 'silver', 'free']
    """
    tenants: List[Tenant] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        name = parts[0].strip()
        kw: Dict[str, Any] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ClusterError(
                    f"bad tenant option {part!r} in {entry!r} "
                    f"(expected key=value)")
            key, _, val = part.partition("=")
            mapped = _PARSE_KEYS.get(key.strip())
            if mapped is None:
                raise ClusterError(
                    f"unknown tenant option {key!r} in {entry!r}; "
                    f"known: {sorted(set(_PARSE_KEYS))}")
            field, conv = mapped
            kw[field] = conv(val)
        tenants.append(Tenant(name, **kw))
    if not tenants:
        raise ClusterError(f"no tenants in spec {spec!r}")
    return TenantSet(tenants)
