"""MiniLang recursive-descent parser.

Grammar (informal)::

    program   := classdecl+
    classdecl := 'class' IDENT ['extends' IDENT] '{' member* '}'
    member    := ['static'] type IDENT ';'                      (field)
               | ['static'] (type | 'void') IDENT '(' params ')' block
    type      := ('int'|'float'|'bool'|'str'|IDENT) ('[' ']')*
    block     := '{' stmt* '}'
    stmt      := type IDENT ['=' expr] ';'
               | lvalue '=' expr ';'
               | 'if' '(' expr ')' block ['else' (block | ifstmt)]
               | 'while' '(' expr ')' block
               | 'for' '(' simple? ';' expr? ';' simple? ')' block
               | 'return' expr? ';' | 'throw' expr ';'
               | 'try' block 'catch' '(' IDENT IDENT ')' block
               | 'switch' '(' expr ')' '{' case* '}'
               | 'break' ';' | 'continue' ';'
               | expr ';'
    case      := ('case' ['-'] INT | 'default') ':' stmt*
    expr      := precedence-climbing over || && == != < <= > >= + - * / %
                 with unary ! -, postfix '.' IDENT, '.' IDENT '(...)',
                 '[expr]', and primaries: literals, 'new', '(', this,
                 null, true, false, IDENT
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.lang import ast_nodes as A
from repro.lang.lexer import Token, tokenize

_TYPE_KWS = ("int", "float", "bool", "str")

#: binary operator precedence (higher binds tighter)
_PREC = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


class Parser:
    """Single-pass recursive-descent parser over the token list."""

    def __init__(self, source: str):
        self.toks: List[Token] = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.toks[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        t = self.peek()
        if t.kind != kind or (text is not None and t.text != text):
            want = text or kind
            raise CompileError(f"expected {want!r}, got {t.text!r}",
                               t.line, t.col)
        return self.next()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        t = self.peek()
        if t.kind == kind and (text is None or t.text == text):
            return self.next()
        return None

    def _kw(self, word: str) -> Optional[Token]:
        return self.accept("kw", word)

    # -- declarations -----------------------------------------------------

    def parse_program(self) -> A.Program:
        classes = []
        while self.peek().kind != "eof":
            classes.append(self.parse_class())
        if not classes:
            t = self.peek()
            raise CompileError("empty program", t.line, t.col)
        return A.Program(classes=classes)

    def parse_class(self) -> A.ClassDecl:
        start = self.expect("kw", "class")
        name = self.expect("ident").text
        superclass = None
        if self._kw("extends"):
            superclass = self.expect("ident").text
        self.expect("{")
        fields: List[A.FieldDeclNode] = []
        methods: List[A.MethodDecl] = []
        while not self.accept("}"):
            is_static = bool(self._kw("static"))
            t = self.peek()
            if t.kind == "kw" and t.text == "void":
                self.next()
                methods.append(self._method_rest("void", is_static, t.line))
                continue
            type_name = self.parse_type()
            ident = self.expect("ident")
            if self.peek().kind == "(":
                self.pos -= 1  # put ident back
                methods.append(self._method_rest(type_name, is_static, t.line))
            else:
                self.expect(";")
                fields.append(A.FieldDeclNode(type_name, ident.text,
                                              is_static, t.line))
        return A.ClassDecl(name, superclass, fields, methods, start.line)

    def _method_rest(self, return_type: str, is_static: bool,
                     line: int) -> A.MethodDecl:
        name = self.expect("ident").text
        self.expect("(")
        params: List[A.Param] = []
        if not self.accept(")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").text
                params.append(A.Param(ptype, pname))
                if not self.accept(","):
                    break
            self.expect(")")
        body = self.parse_block()
        return A.MethodDecl(name, params, return_type, body, is_static, line)

    def parse_type(self) -> str:
        t = self.peek()
        if t.kind == "kw" and t.text in _TYPE_KWS:
            self.next()
            base = t.text
        elif t.kind == "ident":
            self.next()
            base = t.text
        else:
            raise CompileError(f"expected type, got {t.text!r}", t.line, t.col)
        while self.peek().kind == "[" and self.peek(1).kind == "]":
            self.next()
            self.next()
            base += "[]"
        return base

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> A.Block:
        start = self.expect("{")
        stmts: List[A.Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_stmt())
        return A.Block(line=start.line, stmts=stmts)

    def _looks_like_decl(self) -> bool:
        """Type-then-ident lookahead disambiguates declarations from
        expressions (``Point p;`` vs ``p.x = 1;``)."""
        t = self.peek()
        if t.kind == "kw" and t.text in _TYPE_KWS:
            return True
        if t.kind != "ident":
            return False
        i = 1
        while self.peek(i).kind == "[" and self.peek(i + 1).kind == "]":
            i += 2
        nxt = self.peek(i)
        after = self.peek(i + 1)
        return nxt.kind == "ident" and after.kind in ("=", ";")

    def parse_stmt(self) -> A.Stmt:
        t = self.peek()
        if t.kind == "{":
            return self.parse_block()
        if t.kind == "kw":
            if t.text == "if":
                return self._parse_if()
            if t.text == "while":
                self.next()
                self.expect("(")
                cond = self.parse_expr()
                self.expect(")")
                return A.While(line=t.line, cond=cond, body=self.parse_block())
            if t.text == "for":
                return self._parse_for()
            if t.text == "return":
                self.next()
                value = None if self.peek().kind == ";" else self.parse_expr()
                self.expect(";")
                return A.Return(line=t.line, value=value)
            if t.text == "throw":
                self.next()
                value = self.parse_expr()
                self.expect(";")
                return A.Throw(line=t.line, value=value)
            if t.text == "try":
                self.next()
                body = self.parse_block()
                self.expect("kw", "catch")
                self.expect("(")
                exc_class = self.expect("ident").text
                exc_var = self.expect("ident").text
                self.expect(")")
                handler = self.parse_block()
                return A.TryCatch(line=t.line, body=body, exc_class=exc_class,
                                  exc_var=exc_var, handler=handler)
            if t.text == "switch":
                return self._parse_switch()
            if t.text == "break":
                self.next()
                self.expect(";")
                return A.Break(line=t.line)
            if t.text == "continue":
                self.next()
                self.expect(";")
                return A.Continue(line=t.line)
        if self._looks_like_decl():
            type_name = self.parse_type()
            name = self.expect("ident").text
            init = None
            if self.accept("="):
                init = self.parse_expr()
            self.expect(";")
            return A.VarDecl(line=t.line, type_name=type_name, name=name,
                             init=init)
        return self._parse_simple_then(";", t)

    def _parse_switch(self) -> A.Switch:
        start = self.expect("kw", "switch")
        self.expect("(")
        subject = self.parse_expr()
        self.expect(")")
        self.expect("{")
        cases: List[A.SwitchCase] = []
        seen_labels: set = set()
        seen_default = False
        while not self.accept("}"):
            t = self.peek()
            if self._kw("case"):
                neg = self.accept("-") is not None
                lit = self.expect("int")
                label = -int(lit.text) if neg else int(lit.text)
                if label in seen_labels:
                    raise CompileError(f"duplicate case label {label}",
                                       t.line, t.col)
                seen_labels.add(label)
                self.expect(":")
                case = A.SwitchCase(labels=[label], line=t.line)
            elif self._kw("default"):
                if seen_default:
                    raise CompileError("duplicate default label",
                                       t.line, t.col)
                seen_default = True
                self.expect(":")
                case = A.SwitchCase(is_default=True, line=t.line)
            else:
                raise CompileError(
                    f"expected 'case' or 'default', got {t.text!r}",
                    t.line, t.col)
            while True:
                nxt = self.peek()
                if nxt.kind == "}" or (nxt.kind == "kw"
                                       and nxt.text in ("case", "default")):
                    break
                case.body.append(self.parse_stmt())
            cases.append(case)
        return A.Switch(line=start.line, subject=subject, cases=cases)

    def _parse_simple(self) -> A.Stmt:
        """An assignment or expression statement without the terminator
        (used by ``for`` headers)."""
        t = self.peek()
        if self._looks_like_decl():
            type_name = self.parse_type()
            name = self.expect("ident").text
            init = None
            if self.accept("="):
                init = self.parse_expr()
            return A.VarDecl(line=t.line, type_name=type_name, name=name,
                             init=init)
        expr = self.parse_expr()
        if self.accept("="):
            if not isinstance(expr, (A.Name, A.FieldAccess, A.Index)):
                raise CompileError("invalid assignment target", t.line, t.col)
            value = self.parse_expr()
            return A.Assign(line=t.line, target=expr, value=value)
        return A.ExprStmt(line=t.line, expr=expr)

    def _parse_simple_then(self, term: str, t: Token) -> A.Stmt:
        s = self._parse_simple()
        self.expect(term)
        return s

    def _parse_if(self) -> A.Stmt:
        t = self.expect("kw", "if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block()
        otherwise: Optional[A.Block] = None
        if self._kw("else"):
            if self.peek().kind == "kw" and self.peek().text == "if":
                nested = self._parse_if()
                otherwise = A.Block(line=nested.line, stmts=[nested])
            else:
                otherwise = self.parse_block()
        return A.If(line=t.line, cond=cond, then=then, otherwise=otherwise)

    def _parse_for(self) -> A.Stmt:
        t = self.expect("kw", "for")
        self.expect("(")
        init = None if self.peek().kind == ";" else self._parse_simple()
        self.expect(";")
        cond = None if self.peek().kind == ";" else self.parse_expr()
        self.expect(";")
        step = None if self.peek().kind == ")" else self._parse_simple()
        self.expect(")")
        return A.For(line=t.line, init=init, cond=cond, step=step,
                     body=self.parse_block())

    # -- expressions -------------------------------------------------------------

    def parse_expr(self, min_prec: int = 1) -> A.Expr:
        left = self.parse_unary()
        while True:
            t = self.peek()
            prec = _PREC.get(t.kind)
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_expr(prec + 1)
            left = A.Binary(line=t.line, op=t.kind, left=left, right=right)

    def parse_unary(self) -> A.Expr:
        t = self.peek()
        if t.kind == "!":
            self.next()
            return A.Unary(line=t.line, op="!", operand=self.parse_unary())
        if t.kind == "-":
            self.next()
            return A.Unary(line=t.line, op="-", operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            t = self.peek()
            if t.kind == ".":
                self.next()
                name = self.expect("ident").text
                if self.peek().kind == "(":
                    args = self._parse_args()
                    expr = A.Call(line=t.line, target=expr, method=name,
                                  args=args)
                else:
                    expr = A.FieldAccess(line=t.line, target=expr, name=name)
            elif t.kind == "[":
                self.next()
                idx = self.parse_expr()
                self.expect("]")
                expr = A.Index(line=t.line, target=expr, index=idx)
            elif t.kind == "(" and isinstance(expr, A.Name):
                # bare call: method on this / same class
                args = self._parse_args()
                expr = A.Call(line=t.line, target=None, method=expr.ident,
                              args=args)
            else:
                return expr

    def _parse_args(self) -> List[A.Expr]:
        self.expect("(")
        args: List[A.Expr] = []
        if not self.accept(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
            self.expect(")")
        return args

    def parse_primary(self) -> A.Expr:
        t = self.peek()
        if t.kind == "int":
            self.next()
            return A.IntLit(line=t.line, value=int(t.text))
        if t.kind == "float":
            self.next()
            return A.FloatLit(line=t.line, value=float(t.text))
        if t.kind == "string":
            self.next()
            return A.StrLit(line=t.line, value=t.text)
        if t.kind == "kw":
            if t.text == "true":
                self.next()
                return A.BoolLit(line=t.line, value=True)
            if t.text == "false":
                self.next()
                return A.BoolLit(line=t.line, value=False)
            if t.text == "null":
                self.next()
                return A.NullLit(line=t.line)
            if t.text == "this":
                self.next()
                return A.This(line=t.line)
            if t.text == "new":
                self.next()
                if self.peek().kind == "kw" and self.peek().text in _TYPE_KWS:
                    elem = self.next().text
                    self.expect("[")
                    length = self.parse_expr()
                    self.expect("]")
                    return A.NewArray(line=t.line, elem_type=elem, length=length)
                cname = self.expect("ident").text
                if self.peek().kind == "[":
                    self.next()
                    length = self.parse_expr()
                    self.expect("]")
                    return A.NewArray(line=t.line, elem_type=cname, length=length)
                args = self._parse_args()
                return A.NewObject(line=t.line, class_name=cname, args=args)
        if t.kind == "ident":
            self.next()
            return A.Name(line=t.line, ident=t.text)
        if t.kind == "(":
            self.next()
            e = self.parse_expr()
            self.expect(")")
            return e
        raise CompileError(f"unexpected token {t.text!r}", t.line, t.col)


def parse(source: str) -> A.Program:
    """Parse MiniLang source into an AST."""
    return Parser(source).parse_program()
