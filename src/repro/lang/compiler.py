"""Compiler facade: source text -> verified class files."""

from __future__ import annotations

from typing import Dict

from repro.bytecode.code import ClassFile
from repro.bytecode.verifier import verify_class
from repro.lang.codegen import CodeGen, builtin_exception_classes
from repro.lang.parser import parse


def compile_source(source: str, include_builtins: bool = True,
                    verify: bool = True) -> Dict[str, ClassFile]:
    """Compile a MiniLang program.

    Args:
        source: program text (one or more classes).
        include_builtins: also return the builtin exception classes
            (``NullPointerException`` etc.), so the result is a complete
            loadable class set.
        verify: run the bytecode verifier over every generated method.

    Returns:
        mapping class name -> :class:`ClassFile`.
    """
    program = parse(source)
    classes = CodeGen(program).generate()
    if include_builtins:
        for name, cf in builtin_exception_classes().items():
            classes.setdefault(name, cf)
    if verify:
        for cf in classes.values():
            verify_class(cf)
    return classes
