"""MiniLang lexer.

MiniLang is the Java-like guest language of the reproduction (the paper's
applications are plain Java).  The lexer produces a flat token stream
with line/column positions used for diagnostics and for the bytecode
line table (the preprocessor's migration-safe points are defined in
terms of source lines, exactly as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

KEYWORDS = frozenset({
    "class", "extends", "static", "void", "int", "float", "bool", "str",
    "if", "else", "while", "for", "return", "new", "null", "true", "false",
    "this", "try", "catch", "throw", "break", "continue",
    "switch", "case", "default",
})

#: multi-char operators, longest first
_OPS2 = ("==", "!=", "<=", ">=", "&&", "||")
_OPS1 = "+-*/%<>=!.,;:()[]{}"


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is ``ident``, ``int``, ``float``,
    ``string``, ``kw`` or the operator text itself."""

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniLang source; raises :class:`CompileError` on bad input."""
    toks: List[Token] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def error(msg: str) -> CompileError:
        return CompileError(msg, line, col)

    while i < n:
        c = source[i]
        # whitespace
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for ch in source[i:end + 2]:
                if ch == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # identifiers / keywords
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            toks.append(Token("kw" if text in KEYWORDS else "ident",
                              text, line, col))
            col += j - i
            i = j
            continue
        # numbers
        if c.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_float = False
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            toks.append(Token("float" if is_float else "int",
                              source[i:j], line, col))
            col += j - i
            i = j
            continue
        # strings
        if c == '"':
            j = i + 1
            buf: List[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise error("unterminated string literal")
                if source[j] == "\\":
                    j += 1
                    if j >= n:
                        raise error("bad escape at end of input")
                    esc = source[j]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                               .get(esc, esc))
                else:
                    buf.append(source[j])
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            toks.append(Token("string", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # operators
        two = source[i:i + 2]
        if two in _OPS2:
            toks.append(Token(two, two, line, col))
            i += 2
            col += 2
            continue
        if c in _OPS1:
            toks.append(Token(c, c, line, col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {c!r}")
    toks.append(Token("eof", "", line, col))
    return toks
