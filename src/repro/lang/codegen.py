"""MiniLang bytecode generator.

Translates the AST into :class:`repro.bytecode.code.ClassFile` objects.
Statement boundaries become line-table entries — the preprocessor
(:mod:`repro.preprocess`) later derives migration-safe points from them,
as the paper does for Java source lines.

Name resolution for ``X.y`` / ``X.y(...)``:

1. if ``X`` is a local variable -> instance field / virtual call;
2. if ``X`` is a native namespace (``Sys``, ``FS``...) -> ``NATIVE`` call;
3. if ``X`` is a known class -> static field / static call;
4. otherwise -> :class:`repro.errors.CompileError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.code import ClassFile, CodeObject, ExcEntry, FieldDecl, Instr
from repro.errors import CompileError
from repro.lang import ast_nodes as A

#: namespaces resolved to NATIVE calls (host-implemented)
NATIVE_NAMESPACES = frozenset({"Sys", "FS", "ObjMan", "CapturedState", "Mig"})

#: guest exception classes available without declaration
BUILTIN_EXCEPTIONS: Dict[str, Optional[str]] = {
    "Throwable": None,
    "Exception": "Throwable",
    "RuntimeException": "Exception",
    "NullPointerException": "RuntimeException",
    "ArithmeticException": "RuntimeException",
    "IndexOutOfBoundsException": "RuntimeException",
    "InvalidStateException": "RuntimeException",
    "OutOfMemoryError": "Throwable",
    "ClassNotFoundException": "Throwable",
}

_DEFAULTS = {"int": 0, "float": 0.0, "bool": False, "str": ""}

_NOMINAL = {"int": 8, "float": 8, "bool": 1, "str": 64}


def nominal_bytes(type_name: str) -> int:
    """Per-value serialized size used in cost accounting."""
    if type_name.endswith("[]"):
        return 8  # a reference
    return _NOMINAL.get(type_name, 8)


def builtin_exception_classes() -> Dict[str, ClassFile]:
    """The always-available guest exception classes (each carries a
    ``msg`` string field)."""
    out: Dict[str, ClassFile] = {}
    for name, sup in BUILTIN_EXCEPTIONS.items():
        out[name] = ClassFile(
            name, superclass=sup,
            fields=[FieldDecl("msg", False, "str", nominal_bytes("str"))],
        )
    return out


class _MethodEmitter:
    """Bytecode emission state for one method."""

    def __init__(self, gen: "CodeGen", cls: A.ClassDecl, meth: A.MethodDecl):
        self.gen = gen
        self.cls = cls
        self.meth = meth
        self.instrs: List[Instr] = []
        self.line_table: List[Tuple[int, int]] = []
        self.exc_table: List[ExcEntry] = []
        self.slots: Dict[str, int] = {}
        self.slot_types: Dict[int, str] = {}
        self.local_names: List[str] = []
        self._cur_line = -1
        self._break_patches: List[List[int]] = []
        self._continue_patches: List[List[int]] = []
        if not meth.is_static:
            self._declare("this", cls.name, meth.line)
        for p in meth.params:
            self._declare(p.name, p.type_name, meth.line)

    # -- low-level emission ----------------------------------------------

    def here(self) -> int:
        return len(self.instrs)

    def emit(self, opcode: str, a=None, b=None) -> int:
        bci = len(self.instrs)
        self.instrs.append(Instr(opcode, a, b))
        return bci

    def mark_line(self, line: int) -> None:
        """Open a new source line at the next emitted instruction."""
        if line != self._cur_line:
            bci = self.here()
            if self.line_table and self.line_table[-1][0] == bci:
                self.line_table[-1] = (bci, line)
            else:
                self.line_table.append((bci, line))
            self._cur_line = line

    def patch(self, bci: int, target: int) -> None:
        self.instrs[bci] = Instr(self.instrs[bci].op, target,
                                 self.instrs[bci].b)

    def _declare(self, name: str, type_name: str, line: int) -> int:
        if name in self.slots:
            # Approximate Java block scoping: a re-declaration (e.g.
            # ``for (int i ...)`` in two sibling loops) reuses the slot.
            slot = self.slots[name]
            self.slot_types[slot] = type_name
            return slot
        slot = len(self.local_names)
        self.slots[name] = slot
        self.slot_types[slot] = type_name
        self.local_names.append(name)
        return slot

    # -- statements ---------------------------------------------------------

    def gen_block(self, block: A.Block) -> None:
        for s in block.stmts:
            self.gen_stmt(s)

    def gen_stmt(self, s: A.Stmt) -> None:
        self.mark_line(s.line)
        if isinstance(s, A.Block):
            self.gen_block(s)
        elif isinstance(s, A.VarDecl):
            slot = self._declare(s.name, s.type_name, s.line)
            if s.init is not None:
                self.gen_expr(s.init)
            else:
                self.emit(op.CONST, _DEFAULTS.get(s.type_name))
            self.emit(op.STORE, slot)
        elif isinstance(s, A.Assign):
            self._gen_assign(s)
        elif isinstance(s, A.ExprStmt):
            self.gen_expr(s.expr)
            self.emit(op.POP)
        elif isinstance(s, A.If):
            self._gen_if(s)
        elif isinstance(s, A.While):
            self._gen_while(s)
        elif isinstance(s, A.For):
            self._gen_for(s)
        elif isinstance(s, A.Return):
            if s.value is not None:
                self.gen_expr(s.value)
                self.emit(op.RETV)
            else:
                self.emit(op.RET)
        elif isinstance(s, A.Throw):
            self.gen_expr(s.value)
            self.emit(op.THROW)
        elif isinstance(s, A.TryCatch):
            self._gen_try(s)
        elif isinstance(s, A.Switch):
            self._gen_switch(s)
        elif isinstance(s, A.Break):
            if not self._break_patches:
                raise CompileError("break outside loop or switch", s.line)
            self._break_patches[-1].append(self.emit(op.JMP, -1))
        elif isinstance(s, A.Continue):
            if not self._continue_patches:
                raise CompileError("continue outside loop", s.line)
            self._continue_patches[-1].append(self.emit(op.JMP, -1))
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {type(s).__name__}", s.line)

    def _gen_assign(self, s: A.Assign) -> None:
        t = s.target
        if isinstance(t, A.Name):
            if t.ident in self.slots:
                self.gen_expr(s.value)
                self.emit(op.STORE, self.slots[t.ident])
                return
            kind = self._implicit_field(t.ident)
            if kind == "instance":
                self.emit(op.LOAD, 0)
                self.gen_expr(s.value)
                self.emit(op.PUTF, t.ident)
                return
            if kind == "static":
                self.gen_expr(s.value)
                self.emit(op.PUTS, (self.cls.name, t.ident))
                return
            raise CompileError(f"assignment to unknown variable {t.ident!r}",
                               s.line)
        if isinstance(t, A.FieldAccess):
            cls = self._as_class_name(t.target)
            if cls is not None:
                self.gen.require_static(cls, t.name, s.line)
                self.gen_expr(s.value)
                self.emit(op.PUTS, (cls, t.name))
                return
            self.gen_expr(t.target)
            self.gen_expr(s.value)
            self.emit(op.PUTF, t.name)
            return
        if isinstance(t, A.Index):
            self.gen_expr(t.target)
            self.gen_expr(t.index)
            self.gen_expr(s.value)
            self.emit(op.ASTORE)
            return
        raise CompileError("invalid assignment target", s.line)

    def _gen_if(self, s: A.If) -> None:
        self.gen_expr(s.cond)
        jz = self.emit(op.JZ, -1)
        self.gen_block(s.then)
        if s.otherwise is not None:
            jend = self.emit(op.JMP, -1)
            self.patch(jz, self.here())
            self.gen_block(s.otherwise)
            self.patch(jend, self.here())
        else:
            self.patch(jz, self.here())

    def _gen_while(self, s: A.While) -> None:
        top = self.here()
        self.gen_expr(s.cond)
        jz = self.emit(op.JZ, -1)
        self._break_patches.append([])
        self._continue_patches.append([])
        self.gen_block(s.body)
        self.emit(op.JMP, top)
        end = self.here()
        self.patch(jz, end)
        for b in self._break_patches.pop():
            self.patch(b, end)
        for c in self._continue_patches.pop():
            self.patch(c, top)

    def _gen_for(self, s: A.For) -> None:
        if s.init is not None:
            self.gen_stmt(s.init)
        top = self.here()
        jz = None
        if s.cond is not None:
            self.mark_line(s.line)
            self.gen_expr(s.cond)
            jz = self.emit(op.JZ, -1)
        self._break_patches.append([])
        self._continue_patches.append([])
        self.gen_block(s.body)
        cont = self.here()
        if s.step is not None:
            self.gen_stmt(s.step)
        self.emit(op.JMP, top)
        end = self.here()
        if jz is not None:
            self.patch(jz, end)
        for b in self._break_patches.pop():
            self.patch(b, end)
        for c in self._continue_patches.pop():
            self.patch(c, cont)

    def _gen_try(self, s: A.TryCatch) -> None:
        if (s.exc_class not in self.gen.class_names
                and s.exc_class not in BUILTIN_EXCEPTIONS):
            raise CompileError(f"unknown exception class {s.exc_class!r}",
                               s.line)
        start = self.here()
        self.gen_block(s.body)
        jend = self.emit(op.JMP, -1)
        end = self.here()
        handler = self.here()
        slot = self.slots.get(s.exc_var)
        if slot is None:
            slot = self._declare(s.exc_var, s.exc_class, s.line)
        self.mark_line(s.handler.line)
        self.emit(op.STORE, slot)
        self.gen_block(s.handler)
        self.patch(jend, self.here())
        self.exc_table.append(ExcEntry(start, end, handler, s.exc_class))

    def _gen_switch(self, s: A.Switch) -> None:
        """``switch`` compiles to one LSWITCH: the table maps each case
        label to its arm's first bci, the default operand to the
        ``default`` arm (or past the end).  Arms fall through in source
        order, Java-style; ``break`` jumps past the end (the switch
        pushes a break frame but no continue frame, so ``continue``
        still targets an enclosing loop)."""
        self.gen_expr(s.subject)
        table: dict = {}
        lsw = self.emit(op.LSWITCH, table, -1)
        self._break_patches.append([])
        default_bci = None
        for case in s.cases:
            bci = self.here()
            self.mark_line(case.line)
            if case.is_default:
                default_bci = bci
            for label in case.labels:
                table[label] = bci
            for st in case.body:
                self.gen_stmt(st)
        end = self.here()
        # Patch the default operand in place (patch() only rewrites the
        # jump-target slot ``a``, which for LSWITCH holds the table).
        self.instrs[lsw] = Instr(op.LSWITCH, table,
                                 end if default_bci is None else default_bci)
        for b in self._break_patches.pop():
            self.patch(b, end)

    # -- expressions -------------------------------------------------------------

    def _implicit_field(self, name: str) -> Optional[str]:
        """Java-style implicit field resolution for a bare name inside a
        method: instance field (if non-static context) or static field of
        the current class / its ancestors.  Returns ``"instance"``,
        ``"static"`` or ``None``."""
        cname: Optional[str] = self.cls.name
        while cname is not None:
            decl = self.gen._decls.get(cname)
            if decl is None:
                break
            for f in decl.fields:
                if f.name == name:
                    if f.is_static:
                        return "static"
                    return None if self.meth.is_static else "instance"
            cname = decl.superclass
        return None

    def _as_class_name(self, e: A.Expr) -> Optional[str]:
        """If ``e`` is a bare name that is not a local but is a class,
        return the class name."""
        if isinstance(e, A.Name) and e.ident not in self.slots:
            if e.ident in self.gen.class_names or e.ident in BUILTIN_EXCEPTIONS:
                return e.ident
        return None

    def gen_expr(self, e: A.Expr) -> None:
        if isinstance(e, A.IntLit):
            self.emit(op.CONST, e.value)
        elif isinstance(e, A.FloatLit):
            self.emit(op.CONST, e.value)
        elif isinstance(e, A.BoolLit):
            self.emit(op.CONST, e.value)
        elif isinstance(e, A.StrLit):
            self.emit(op.CONST, e.value)
        elif isinstance(e, A.NullLit):
            self.emit(op.CONST, None)
        elif isinstance(e, A.This):
            if self.meth.is_static:
                raise CompileError("'this' in static method", e.line)
            self.emit(op.LOAD, 0)
        elif isinstance(e, A.Name):
            if e.ident in self.slots:
                self.emit(op.LOAD, self.slots[e.ident])
            else:
                kind = self._implicit_field(e.ident)
                if kind == "instance":
                    self.emit(op.LOAD, 0)
                    self.emit(op.GETF, e.ident)
                elif kind == "static":
                    self.emit(op.GETS, (self.cls.name, e.ident))
                else:
                    raise CompileError(f"unknown variable {e.ident!r}", e.line)
        elif isinstance(e, A.Unary):
            self.gen_expr(e.operand)
            self.emit(op.NEG if e.op == "-" else op.NOT)
        elif isinstance(e, A.Binary):
            self._gen_binary(e)
        elif isinstance(e, A.FieldAccess):
            cls = self._as_class_name(e.target)
            if cls is not None:
                self.gen.require_static(cls, e.name, e.line)
                self.emit(op.GETS, (cls, e.name))
            else:
                self.gen_expr(e.target)
                self.emit(op.GETF, e.name)
        elif isinstance(e, A.Index):
            self.gen_expr(e.target)
            self.gen_expr(e.index)
            self.emit(op.ALOAD)
        elif isinstance(e, A.Call):
            self._gen_call(e)
        elif isinstance(e, A.NewObject):
            self._gen_new(e)
        elif isinstance(e, A.NewArray):
            self.gen_expr(e.length)
            kind = e.elem_type if e.elem_type in _NOMINAL else "ref"
            self.emit(op.NEWARR, kind, nominal_bytes(e.elem_type))
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {type(e).__name__}", e.line)

    def _gen_binary(self, e: A.Binary) -> None:
        if e.op in ("&&", "||"):
            # Short-circuit, value-preserving (result is one operand).
            self.gen_expr(e.left)
            self.emit(op.DUP)
            j = self.emit(op.JZ if e.op == "&&" else op.JNZ, -1)
            self.emit(op.POP)
            self.gen_expr(e.right)
            self.patch(j, self.here())
            return
        self.gen_expr(e.left)
        self.gen_expr(e.right)
        table = {"+": op.ADD, "-": op.SUB, "*": op.MUL, "/": op.DIV,
                 "%": op.MOD, "==": op.EQ, "!=": op.NE, "<": op.LT,
                 "<=": op.LE, ">": op.GT, ">=": op.GE}
        self.emit(table[e.op])

    def _gen_call(self, e: A.Call) -> None:
        if e.target is None:
            # Bare call: same-class static or implicit-this virtual.
            decl = self.gen.find_method(self.cls.name, e.method)
            if decl is None:
                raise CompileError(f"unknown method {e.method!r}", e.line)
            if decl.is_static:
                for a in e.args:
                    self.gen_expr(a)
                self.emit(op.INVOKESTATIC, (self.cls.name, e.method),
                          len(e.args))
            else:
                if self.meth.is_static:
                    raise CompileError(
                        f"instance method {e.method!r} called from static "
                        f"context", e.line)
                self.emit(op.LOAD, 0)
                for a in e.args:
                    self.gen_expr(a)
                self.emit(op.INVOKEVIRT, e.method, len(e.args))
            return
        if isinstance(e.target, A.Name) and e.target.ident not in self.slots:
            ns = e.target.ident
            if ns in NATIVE_NAMESPACES:
                for a in e.args:
                    self.gen_expr(a)
                self.emit(op.NATIVE, f"{ns}.{e.method}", len(e.args))
                return
            if ns in self.gen.class_names:
                decl = self.gen.find_method(ns, e.method)
                if decl is None or not decl.is_static:
                    raise CompileError(
                        f"no static method {ns}.{e.method}", e.line)
                for a in e.args:
                    self.gen_expr(a)
                self.emit(op.INVOKESTATIC, (ns, e.method), len(e.args))
                return
            kind = self._implicit_field(ns)
            if kind is not None:
                # Method call on an implicit field: load it, then virtual.
                if kind == "instance":
                    self.emit(op.LOAD, 0)
                    self.emit(op.GETF, ns)
                else:
                    self.emit(op.GETS, (self.cls.name, ns))
                for a in e.args:
                    self.gen_expr(a)
                self.emit(op.INVOKEVIRT, e.method, len(e.args))
                return
            raise CompileError(f"unknown name {ns!r}", e.line)
        self.gen_expr(e.target)
        for a in e.args:
            self.gen_expr(a)
        self.emit(op.INVOKEVIRT, e.method, len(e.args))

    def _gen_new(self, e: A.NewObject) -> None:
        known = (e.class_name in self.gen.class_names
                 or e.class_name in BUILTIN_EXCEPTIONS)
        if not known:
            raise CompileError(f"unknown class {e.class_name!r}", e.line)
        self.emit(op.NEW, e.class_name)
        init = self.gen.find_method(e.class_name, "init")
        if init is not None and not init.is_static:
            self.emit(op.DUP)
            for a in e.args:
                self.gen_expr(a)
            self.emit(op.INVOKEVIRT, "init", len(e.args))
            self.emit(op.POP)
        elif e.args:
            raise CompileError(
                f"class {e.class_name!r} has no init but got arguments",
                e.line)

    # -- finish -----------------------------------------------------------------

    def finish(self) -> CodeObject:
        # Unconditional return epilogue: guarantees the method cannot fall
        # off the end, and gives loop-exit jumps at the current tail a
        # valid landing point.  Unreachable when all paths return.
        self.mark_line(self._cur_line if self._cur_line > 0 else 1)
        if self.meth.return_type == "void":
            self.emit(op.RET)
        else:
            self.emit(op.CONST, _DEFAULTS.get(self.meth.return_type))
            self.emit(op.RETV)
        nparams = len(self.meth.params) + (0 if self.meth.is_static else 1)
        return CodeObject(
            self.cls.name, self.meth.name, nparams,
            len(self.local_names), self.instrs, self.line_table,
            self.exc_table, self.local_names, self.meth.is_static,
        )


class CodeGen:
    """Whole-program code generator (needs all classes for resolution)."""

    def __init__(self, program: A.Program):
        self.program = program
        self.class_names: Set[str] = {c.name for c in program.classes}
        self._decls: Dict[str, A.ClassDecl] = {c.name: c for c in program.classes}
        dup = len(self.class_names) != len(program.classes)
        if dup:
            raise CompileError("duplicate class name in program")

    def find_method(self, class_name: str, method: str) -> Optional[A.MethodDecl]:
        """Find a method declaration, walking the superclass chain."""
        cname: Optional[str] = class_name
        while cname is not None and cname in self._decls:
            decl = self._decls[cname]
            for m in decl.methods:
                if m.name == method:
                    return m
            cname = decl.superclass
        return None

    def require_static(self, class_name: str, field: str, line: int) -> None:
        """Check a static-field reference resolves (walks superclasses)."""
        cname: Optional[str] = class_name
        while cname is not None:
            decl = self._decls.get(cname)
            if decl is None:
                if cname in BUILTIN_EXCEPTIONS:
                    break
                raise CompileError(f"unknown class {cname!r}", line)
            for f in decl.fields:
                if f.name == field and f.is_static:
                    return
            cname = decl.superclass
        raise CompileError(f"no static field {class_name}.{field}", line)

    def generate(self) -> Dict[str, ClassFile]:
        """Compile every class; returns name -> :class:`ClassFile`."""
        out: Dict[str, ClassFile] = {}
        for cdecl in self.program.classes:
            if cdecl.superclass is not None and (
                    cdecl.superclass not in self.class_names
                    and cdecl.superclass not in BUILTIN_EXCEPTIONS):
                raise CompileError(
                    f"unknown superclass {cdecl.superclass!r}", cdecl.line)
            fields = [
                FieldDecl(f.name, f.is_static, f.type_name,
                          nominal_bytes(f.type_name))
                for f in cdecl.fields
            ]
            methods: Dict[str, CodeObject] = {}
            for m in cdecl.methods:
                if m.name in methods:
                    raise CompileError(
                        f"duplicate method {cdecl.name}.{m.name} "
                        f"(no overloading)", m.line)
                em = _MethodEmitter(self, cdecl, m)
                em.gen_block(m.body)
                methods[m.name] = em.finish()
            out[cdecl.name] = ClassFile(cdecl.name, cdecl.superclass,
                                        fields, methods)
        return out
