"""MiniLang abstract syntax tree.

Every node carries the source ``line`` so codegen can build the bytecode
line table (the foundation of migration-safe points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# -- expressions -------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    """A bare identifier: local variable, or class name in static refs."""
    ident: str = ""


@dataclass
class This(Expr):
    pass


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class FieldAccess(Expr):
    """``target.name`` — instance field, or static field when ``target``
    resolves to a class name."""
    target: Expr = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class Index(Expr):
    """``target[index]``"""
    target: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """``target.method(args)`` — static, virtual, or native depending on
    what ``target`` resolves to; ``target is None`` for implicit-this or
    same-class-static calls."""
    target: Optional[Expr] = None
    method: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewObject(Expr):
    class_name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    elem_type: str = "int"
    length: Expr = None  # type: ignore[assignment]


# -- statements ----------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    type_name: str = "int"
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Expr = None  # type: ignore[assignment]  # Name | FieldAccess | Index
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    otherwise: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = None  # type: ignore[assignment]


@dataclass
class SwitchCase:
    """One arm of a switch: integer labels (empty for ``default``) and
    the statements that follow them.  Execution falls through to the
    next arm unless the body breaks, as in Java."""

    labels: List[int] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    is_default: bool = False
    line: int = 0


@dataclass
class Switch(Stmt):
    subject: Expr = None  # type: ignore[assignment]
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Throw(Stmt):
    value: Expr = None  # type: ignore[assignment]


@dataclass
class TryCatch(Stmt):
    body: Block = None  # type: ignore[assignment]
    exc_class: str = "Throwable"
    exc_var: str = "e"
    handler: Block = None  # type: ignore[assignment]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- declarations ----------------------------------------------------------------

@dataclass
class Param:
    type_name: str
    name: str


@dataclass
class MethodDecl:
    name: str
    params: List[Param]
    return_type: str
    body: Block
    is_static: bool
    line: int


@dataclass
class FieldDeclNode:
    type_name: str
    name: str
    is_static: bool
    line: int


@dataclass
class ClassDecl:
    name: str
    superclass: Optional[str]
    fields: List[FieldDeclNode]
    methods: List[MethodDecl]
    line: int


@dataclass
class Program:
    classes: List[ClassDecl]
