"""MiniLang: the Java-like guest language compiled to repro bytecode."""

from repro.lang.compiler import compile_source
from repro.lang.parser import parse

__all__ = ["compile_source", "parse"]
