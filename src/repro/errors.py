"""Exception hierarchy shared across the repro package.

Host-level errors (bugs in *our* code or misuse of the public API) derive
from :class:`ReproError`.  Guest-level errors (exceptions raised *inside*
the mini-VM by guest programs, e.g. ``NullPointerException``) are modeled
separately by :mod:`repro.vm.interpreter` as heap objects and are *not*
Python exceptions, except for the internal unwinding carrier
:class:`GuestThrow`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all host-level errors raised by this package."""


class CompileError(ReproError):
    """Raised by the MiniLang compiler on lexical/syntax/semantic errors.

    Carries a best-effort source position for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(f"line {line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class VerifyError(ReproError):
    """Raised by the bytecode verifier when a code object is malformed."""


class VMError(ReproError):
    """Raised when the VM reaches a state that indicates a host bug
    (corrupt frame, bad opcode, stack underflow...)."""


class LinkError(VMError):
    """Raised when a class, method, or field cannot be resolved."""


class NativeError(VMError):
    """Raised when a native call is malformed or unknown."""


class MigrationError(ReproError):
    """Raised when a migration request cannot be satisfied
    (e.g. no migration-safe point reachable, pinned frame in segment)."""


class SimulationError(ReproError):
    """Raised by the discrete-event kernel on misuse (e.g. scheduling
    into the past)."""


class ClusterError(ReproError):
    """Raised by the cluster substrate (unknown node, no route...)."""
