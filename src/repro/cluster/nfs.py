"""Simulated files and an NFS-style remote file service.

The locality experiments (paper Tables VI, roaming study section IV.C)
move computation toward large files instead of moving the files.  We
model a file as a *nominal size* plus procedurally generated content:
reading a window of the file materializes deterministic pseudo-text for
that window, so a guest text-search kernel really executes over real
bytes while the simulated cost accounts for the full nominal size.

Access paths:

* local read: ``size / local_read_bw`` seconds (SAS/RAID-1 class disk,
  with OS cache deliberately cleared before each run, as in the paper).
* NFS read: local read at the server + network transfer to the client.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.units import mb, MB

#: Deterministic word pool for generated file content.
_WORDS = (
    "the quick brown fox jumps over lazy dog cloud stack frame migration "
    "elastic mobile server object heap beach photo sunset wave sand surf "
    "data locality search index retrieval grid node cluster java bytecode"
).split()


@dataclass
class SimFile:
    """A simulated file.

    Attributes:
        path: absolute path, unique within the file system.
        size: nominal size in bytes (drives all cost accounting).
        host: name of the node that physically stores the file.
        plant: optional (offset, text) pairs planted into the generated
            content (e.g. the search needle for the photo/beach scenario).
    """

    path: str
    size: int
    host: str
    plant: List[Tuple[int, str]] = field(default_factory=list)

    def window(self, offset: int, length: int) -> str:
        """Materialize ``length`` bytes of deterministic content starting
        at ``offset``.  Planted strings override generated text."""
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ClusterError(
                f"{self.path}: window [{offset}, {offset + length}) out of "
                f"range for size {self.size}"
            )
        # Generate words seeded by (path, block) so any window is stable.
        out: List[str] = []
        n = 0
        block = offset // 4096
        while n < length:
            seed = zlib.crc32(f"{self.path}:{block}".encode())
            words = [_WORDS[(seed >> (i * 5)) % len(_WORDS)] for i in range(6)]
            chunk = " ".join(words) + " "
            out.append(chunk)
            n += len(chunk)
            block += 1
        text = "".join(out)[:length]
        # Apply plants that overlap the window.
        for p_off, p_text in self.plant:
            lo = max(p_off, offset)
            hi = min(p_off + len(p_text), offset + length)
            if lo < hi:
                rel = lo - offset
                text = text[:rel] + p_text[lo - p_off: hi - p_off] + text[rel + (hi - lo):]
        return text


@dataclass
class DiskSpec:
    """Sequential-read throughput of a node's local disk, bytes/s."""

    read_bandwidth: float = 180 * MB  # SAS RAID-1 class sequential read
    seek_time: float = 0.004


class FileSystem:
    """The cluster-wide file namespace with NFS semantics.

    Every node sees every file; reading a file hosted elsewhere costs a
    server-side disk read plus the network transfer (NFS over the same
    links the migration traffic uses, as in the paper's testbed).
    """

    def __init__(self, network: Network, disk: Optional[DiskSpec] = None):
        self.network = network
        self.disk = disk or DiskSpec()
        self._files: Dict[str, SimFile] = {}

    def host_file(self, node: Node, path: str, size: int,
                  plant: Optional[List[Tuple[int, str]]] = None) -> SimFile:
        """Create a file of ``size`` nominal bytes stored on ``node``."""
        if path in self._files:
            raise ClusterError(f"file {path} already exists")
        f = SimFile(path=path, size=size, host=node.name, plant=list(plant or []))
        self._files[path] = f
        node.local_files[path] = f
        return f

    def stat(self, path: str) -> SimFile:
        """Look up a file; raises :class:`ClusterError` if missing."""
        try:
            return self._files[path]
        except KeyError:
            raise ClusterError(f"no such file: {path}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self, prefix: str) -> List[str]:
        """All file paths starting with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def read_cost(self, reader: str, path: str, offset: int, length: int) -> float:
        """Simulated seconds for node ``reader`` to read the window.

        Remote (NFS) reads pipeline the server's disk with the wire:
        the client sees ``max(disk, wire)`` plus a request round trip,
        which is what NFS readahead achieves on streaming reads."""
        f = self.stat(path)
        seek = self.disk.seek_time if offset == 0 else 0.0
        disk = length / self.disk.read_bandwidth
        if f.host == reader:
            return seek + disk
        wire = self.network.transfer_time(f.host, reader, length)
        req = self.network.rtt(reader, f.host, 256, 0)
        return seek + max(disk, wire) + req

    def read(self, reader: str, path: str, offset: int, length: int
             ) -> Tuple[str, float]:
        """Read a window: returns ``(content, simulated_seconds)``."""
        f = self.stat(path)
        length = min(length, f.size - offset)
        return f.window(offset, length), self.read_cost(reader, path, offset, length)
