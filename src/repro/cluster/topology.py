"""Canned topologies matching the paper's testbeds.

* :func:`gige_cluster` — the evaluation cluster: N Xeon nodes on GigE
  with NFS-mounted home directories (sections IV.A-IV.C).
* :func:`wan_grid` — the simulated WAN grid of 10 NFS servers used in
  the task-roaming study (section IV.C).
* :func:`phone_setup` — a cluster node plus an iPhone 3G behind a
  rate-limited Wi-Fi router (section IV.D, Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.network import LinkSpec, Network
from repro.cluster.nfs import DiskSpec, FileSystem
from repro.cluster.node import Node, NodeSpec
from repro.errors import ClusterError
from repro.sim.kernel import Environment
from repro.units import gb, gbps, kbps, mb, ms, us


@dataclass
class Cluster:
    """A set of nodes + the network + the shared file system.

    Nodes are grouped into named *racks* (``add_node(..., rack=...)``,
    default one flat rack).  The rack structure is what the serving
    layer's load indexes aggregate over: a node always has fresh load
    knowledge of its own rack (one switch hop away) and consults a
    bounded-staleness summary for the rest of the cluster, so offload
    decisions stay O(log n) in cluster size.
    """

    env: Environment
    network: Network
    fs: FileSystem
    nodes: Dict[str, Node] = field(default_factory=dict)
    #: node name -> rack id
    node_rack: Dict[str, str] = field(default_factory=dict)

    def add_node(self, spec: NodeSpec, rack: str = "rack000") -> Node:
        """Create and register a node in ``rack``."""
        if spec.name in self.nodes:
            raise ClusterError(f"duplicate node {spec.name}")
        n = Node(spec)
        self.nodes[spec.name] = n
        self.node_rack[spec.name] = rack
        return n

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise ClusterError(f"no such node: {name}") from None

    def names(self) -> List[str]:
        return list(self.nodes)

    def rack_of(self, name: str) -> str:
        """The rack a node belongs to."""
        try:
            return self.node_rack[name]
        except KeyError:
            raise ClusterError(f"no such node: {name}") from None

    def racks(self) -> Dict[str, List[str]]:
        """Rack id -> member node names, in registration order."""
        out: Dict[str, List[str]] = {}
        for name, rack in self.node_rack.items():
            out.setdefault(rack, []).append(name)
        return out

    def rack_capacity(self, rack: str) -> float:
        """Aggregate serving capacity (summed ``cpu_weight``) of a rack —
        the static half of the per-rack load aggregates."""
        total = 0.0
        for name, r in self.node_rack.items():
            if r == rack:
                total += self.nodes[name].spec.cpu_weight
        return total

    def latency(self, a: str, b: str) -> float:
        """One-way link latency between two nodes.  A topology query
        for experiments and custom policies; the serving scheduler's
        locality preference is rack-based (same-rack targets win load
        ties via :mod:`repro.serve.loadindex`), with link latencies
        charged where they belong — on the transfers themselves."""
        return self.network.link(a, b).latency


def _base(default_link: LinkSpec) -> Cluster:
    env = Environment()
    net = Network(env, default=default_link)
    fs = FileSystem(net, DiskSpec())
    return Cluster(env=env, network=net, fs=fs)


def gige_cluster(n_nodes: int = 2, ram_bytes: int = gb(32)) -> Cluster:
    """The paper's evaluation cluster: GigE, 32 GB Xeon nodes named
    ``node0..node{n-1}``."""
    cluster = _base(LinkSpec(bandwidth=gbps(1), latency=us(80)))
    for i in range(n_nodes):
        cluster.add_node(NodeSpec(name=f"node{i}", ram_bytes=ram_bytes))
    return cluster


def serve_cluster(n_nodes: int = 4,
                  cpu_weights: Optional[List[float]] = None,
                  ram_bytes: int = gb(32),
                  rack_size: int = 4,
                  cross_rack_latency: float = us(320)) -> Cluster:
    """The elastic-serving testbed: ``n_nodes`` GigE nodes named
    ``node0..node{n-1}``, grouped into racks of ``rack_size``.

    Links within a rack are one switch hop (the default GigE latency);
    links between racks cross an aggregation switch and pay
    ``cross_rack_latency`` one way, so topology-aware offload placement
    has a real gradient to exploit.  ``cpu_weights`` (one per node)
    makes the cluster heterogeneous: weight w serves w times the
    requests of weight 1 and runs guest code w times faster
    (``speed_factor = 1/w``).
    """
    if cpu_weights is not None and len(cpu_weights) != n_nodes:
        raise ClusterError(
            f"expected {n_nodes} cpu weights, got {len(cpu_weights)}")
    if rack_size < 1:
        raise ClusterError(f"rack size must be >= 1, got {rack_size}")
    cluster = _base(LinkSpec(bandwidth=gbps(1), latency=us(80)))
    for i in range(n_nodes):
        w = cpu_weights[i] if cpu_weights is not None else 1.0
        if w <= 0:
            raise ClusterError(f"node{i}: cpu weight must be > 0, got {w}")
        cluster.add_node(NodeSpec(name=f"node{i}", ram_bytes=ram_bytes,
                                  speed_factor=1.0 / w, cpu_weight=w),
                         rack=f"rack{i // rack_size:03d}")
    slow = LinkSpec(bandwidth=gbps(1), latency=cross_rack_latency)
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if i // rack_size != j // rack_size:
                cluster.network.set_link(f"node{i}", f"node{j}", slow)
    return cluster


def wan_grid(n_servers: int = 10) -> Cluster:
    """WAN-connected grid: one client plus ``n_servers`` NFS servers.

    WAN links are much slower than GigE (the roaming study's gains come
    from avoiding WAN NFS reads): 200 Mbps with 5 ms one-way latency.
    """
    cluster = _base(LinkSpec(bandwidth=gbps(0.2), latency=ms(5)))
    cluster.add_node(NodeSpec(name="client"))
    for i in range(n_servers):
        cluster.add_node(NodeSpec(name=f"server{i}"))
    return cluster


def phone_setup(bandwidth_kbps: float = 764.0) -> Cluster:
    """A cluster node plus an iPhone 3G over rate-limited Wi-Fi.

    The iPhone 3G: 412 MHz ARM (≈25x slower than the Xeon reference),
    128 MB RAM, JamVM without JVMTI (``has_vmti=False``), behind a router
    whose bandwidth-control service caps the link at ``bandwidth_kbps``.
    """
    cluster = _base(LinkSpec(bandwidth=gbps(1), latency=us(80)))
    cluster.add_node(NodeSpec(name="server"))
    cluster.add_node(NodeSpec(
        name="iphone",
        speed_factor=25.0,
        ram_bytes=mb(128),
        has_vmti=False,
        kind="phone",
    ))
    wifi = LinkSpec(bandwidth=kbps(bandwidth_kbps), latency=ms(4),
                    per_message_bytes=48)
    cluster.network.set_link("server", "iphone", wifi)
    return cluster
