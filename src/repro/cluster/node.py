"""Cluster nodes.

A :class:`Node` models one machine: a CPU speed factor (1.0 = the paper's
Xeon E5540 reference node; the iPhone 3G is ~25x slower), a RAM capacity
used by admission checks for migration targets, and a set of locally
hosted files (see :mod:`repro.cluster.nfs`).

Nodes do not run code themselves; VMs (:class:`repro.vm.machine.Machine`)
are *placed* on nodes and charge their instruction costs scaled by the
node's speed factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ClusterError
from repro.units import gb


@dataclass
class NodeSpec:
    """Static description of a machine.

    Attributes:
        name: unique node name within a cluster.
        speed_factor: CPU time multiplier relative to the reference node
            (bigger = slower).  The paper's cluster nodes are 1.0; the
            iPhone 3G (412 MHz ARM vs 2.53 GHz Xeon) is ~25.
        ram_bytes: physical memory, used for admission checks.
        has_vmti: whether the node's JVM exposes the debug interface
            (JamVM on the iPhone does not; restoration then falls back to
            Java-serialization at Java level, which is much slower,
            cf. paper section IV.D).
        kind: freeform tag ("server", "phone", "cloud") used by policies.
        cpu_weight: relative serving capacity used by the elastic
            scheduler for weighted queue-depth balancing (a node with
            weight 2 should carry twice the runnable threads of a
            weight-1 node).  Independent of ``speed_factor`` so
            placement preferences can be tuned without changing the
            timing model.
    """

    name: str
    speed_factor: float = 1.0
    ram_bytes: int = gb(32)
    has_vmti: bool = True
    kind: str = "server"
    cpu_weight: float = 1.0


class Node:
    """A machine in the simulated cluster."""

    def __init__(self, spec: NodeSpec):
        self.spec = spec
        #: bytes of simulated RAM currently committed on this node
        self.ram_used: int = 0
        #: files hosted locally: path -> SimFile (set by FileSystem)
        self.local_files: Dict[str, object] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    def cpu_time(self, reference_seconds: float) -> float:
        """Scale a reference-node CPU duration to this node's speed."""
        return reference_seconds * self.spec.speed_factor

    def reserve_ram(self, nbytes: int) -> None:
        """Commit ``nbytes`` of RAM; raises if the node would overcommit.

        This is what makes "a big task cannot fit into a small-capacity
        device unless migrated in a discretized manner" (paper section I)
        checkable in experiments.
        """
        if self.ram_used + nbytes > self.spec.ram_bytes:
            raise ClusterError(
                f"node {self.name}: out of memory "
                f"({self.ram_used + nbytes} > {self.spec.ram_bytes})"
            )
        self.ram_used += nbytes

    def release_ram(self, nbytes: int) -> None:
        """Return previously reserved RAM."""
        self.ram_used = max(0, self.ram_used - nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} x{self.spec.speed_factor:g}>"
