"""Simulated cluster substrate: nodes, network, files, topologies."""

from repro.cluster.network import LinkSpec, Network
from repro.cluster.nfs import DiskSpec, FileSystem, SimFile
from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import (Cluster, gige_cluster, phone_setup,
                                    serve_cluster, wan_grid)

__all__ = [
    "LinkSpec", "Network", "DiskSpec", "FileSystem", "SimFile",
    "Node", "NodeSpec", "Cluster", "gige_cluster", "phone_setup",
    "serve_cluster", "wan_grid",
]
