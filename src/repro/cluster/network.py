"""Point-to-point network model.

Links have a latency (one-way propagation, seconds) and a bandwidth
(bytes/second).  Transferring ``n`` bytes over a link takes
``latency + n / bandwidth`` seconds; a round trip with a small reply is
``2 * latency + n / bandwidth + reply / bandwidth``.

The model is intentionally simple — the paper's tables depend on byte
counts and link speeds, not on protocol dynamics — but it supports
per-message overhead bytes (headers/serialization framing) and
half-duplex contention via the event kernel when used with
:meth:`Network.transfer_proc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import ClusterError
from repro.sim.kernel import Environment, Event, Resource
from repro.units import gbps, us


@dataclass
class LinkSpec:
    """A directed link's characteristics.

    Attributes:
        bandwidth: bytes per second.
        latency: one-way propagation delay, seconds.
        per_message_bytes: fixed framing overhead added to every message.
    """

    bandwidth: float = gbps(1)
    latency: float = us(80)  # typical GigE + switch hop
    per_message_bytes: int = 64

    def transfer_time(self, nbytes: int) -> float:
        """One-way time to move ``nbytes`` (including framing overhead)."""
        if nbytes < 0:
            raise ClusterError(f"negative transfer size {nbytes}")
        return self.latency + (nbytes + self.per_message_bytes) / self.bandwidth

    def rtt(self, request_bytes: int, reply_bytes: int) -> float:
        """Round-trip time for a request/reply exchange."""
        return self.transfer_time(request_bytes) + self.transfer_time(reply_bytes)


class Network:
    """All-pairs network over named nodes.

    A default link spec applies to every pair; specific pairs can be
    overridden (e.g. the Wi-Fi + rate-limited router path to the iPhone).
    Links are symmetric unless both directions are overridden.
    """

    def __init__(self, env: Environment | None = None,
                 default: LinkSpec | None = None):
        self.env = env or Environment()
        self.default = default or LinkSpec()
        self._overrides: Dict[Tuple[str, str], LinkSpec] = {}
        self._resources: Dict[Tuple[str, str], Resource] = {}
        #: total bytes moved, per (src, dst) — for experiment reporting
        self.bytes_moved: Dict[Tuple[str, str], int] = {}
        #: total messages sent, per (src, dst)
        self.messages: Dict[Tuple[str, str], int] = {}
        #: bytes that would have crossed each link but were elided by a
        #: transfer cache hit (delta captures, cached classes, object
        #: revalidations) — the migration fast path's savings meter
        self.bytes_saved: Dict[Tuple[str, str], int] = {}

    def set_link(self, a: str, b: str, spec: LinkSpec,
                 symmetric: bool = True) -> None:
        """Override the link between ``a`` and ``b``."""
        self._overrides[(a, b)] = spec
        if symmetric:
            self._overrides[(b, a)] = spec

    def link(self, src: str, dst: str) -> LinkSpec:
        """The link spec used from ``src`` to ``dst``."""
        if src == dst:
            # Loopback: effectively free but not zero (memcpy-ish).
            return LinkSpec(bandwidth=gbps(80), latency=us(1), per_message_bytes=0)
        return self._overrides.get((src, dst), self.default)

    # -- instantaneous accounting (no contention) -------------------------

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Time to move ``nbytes`` from ``src`` to ``dst``, and record it."""
        spec = self.link(src, dst)
        t = spec.transfer_time(nbytes)
        key = (src, dst)
        self.bytes_moved[key] = self.bytes_moved.get(key, 0) + nbytes
        self.messages[key] = self.messages.get(key, 0) + 1
        return t

    def rtt(self, src: str, dst: str, request_bytes: int, reply_bytes: int) -> float:
        """Round-trip request/reply time, recorded in both directions."""
        t = self.transfer_time(src, dst, request_bytes)
        t += self.transfer_time(dst, src, reply_bytes)
        return t

    # -- event-kernel integration (contention-aware) ----------------------

    def _resource(self, src: str, dst: str) -> Resource:
        key = (src, dst)
        if key not in self._resources:
            self._resources[key] = Resource(self.env, capacity=1)
        return self._resources[key]

    def transfer_proc(self, src: str, dst: str, nbytes: int) -> Iterator[Event]:
        """A process generator performing a serialized transfer on the
        (src, dst) link: concurrent transfers on the same directed link
        queue up FIFO.  Yields kernel events; usable with
        ``env.process(net.transfer_proc(...))``."""
        res = self._resource(src, dst)
        yield res.request()
        try:
            yield self.env.timeout(self.transfer_time(src, dst, nbytes))
        finally:
            res.release()

    def occupy_proc(self, src: str, dst: str, seconds: float) -> Iterator[Event]:
        """Hold the directed (src, dst) link for ``seconds`` of
        *already-accounted* transfer time: the caller computed (and
        recorded) the byte-level cost elsewhere — e.g. a bulk SOD
        offload message priced by the migration engine — and this
        serializes its occupancy so concurrent transfers queue FIFO
        instead of overlapping for free.  No bytes are re-recorded."""
        res = self._resource(src, dst)
        yield res.request()
        try:
            yield self.env.timeout(seconds)
        finally:
            res.release()

    def record_saved(self, src: str, dst: str, nbytes: int) -> None:
        """Account bytes a transfer-cache hit kept off the (src, dst)
        link (the payload was *not* moved; only the savings meter
        advances)."""
        if nbytes <= 0:
            return
        key = (src, dst)
        self.bytes_saved[key] = self.bytes_saved.get(key, 0) + nbytes

    def total_bytes(self) -> int:
        """All bytes moved over every link so far."""
        return sum(self.bytes_moved.values())

    def total_saved(self) -> int:
        """All bytes elided by transfer-cache hits so far."""
        return sum(self.bytes_saved.values())
