"""Point-to-point network model.

Links have a latency (one-way propagation, seconds) and a bandwidth
(bytes/second).  Transferring ``n`` bytes over a link takes
``latency + n / bandwidth`` seconds; a round trip with a small reply is
``2 * latency + n / bandwidth + reply / bandwidth``.

The model is intentionally simple — the paper's tables depend on byte
counts and link speeds, not on protocol dynamics — but it supports
per-message overhead bytes (headers/serialization framing) and
half-duplex contention via the event kernel when used with
:meth:`Network.transfer_proc`.

Fault injection (the chaos layer): links can be *failed* and *healed*
(:meth:`Network.fail_link` / :meth:`Network.heal_link`, with
:meth:`Network.partition` grouping them), and nodes can be *crashed*
(:meth:`Network.crash_node`).  The contention-aware process helpers
return a delivered/dropped verdict — a message is delivered iff its
link was up when it entered the wire, is still up when its transfer
time elapses, and no failure epoch ticked in between (a link that
flapped down-and-up mid-flight still loses the message, like a TCP
connection reset).  With no faults injected the timing and the event
schedule are byte-identical to the fault-free model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Iterable, Tuple

from repro.errors import ClusterError
from repro.sim.kernel import Environment, Event, Resource
from repro.units import gbps, us


@dataclass
class LinkSpec:
    """A directed link's characteristics.

    Attributes:
        bandwidth: bytes per second.
        latency: one-way propagation delay, seconds.
        per_message_bytes: fixed framing overhead added to every message.
    """

    bandwidth: float = gbps(1)
    latency: float = us(80)  # typical GigE + switch hop
    per_message_bytes: int = 64

    def transfer_time(self, nbytes: int) -> float:
        """One-way time to move ``nbytes`` (including framing overhead)."""
        if nbytes < 0:
            raise ClusterError(f"negative transfer size {nbytes}")
        return self.latency + (nbytes + self.per_message_bytes) / self.bandwidth

    def rtt(self, request_bytes: int, reply_bytes: int) -> float:
        """Round-trip time for a request/reply exchange."""
        return self.transfer_time(request_bytes) + self.transfer_time(reply_bytes)


class Network:
    """All-pairs network over named nodes.

    A default link spec applies to every pair; specific pairs can be
    overridden (e.g. the Wi-Fi + rate-limited router path to the iPhone).
    Links are symmetric unless both directions are overridden.
    """

    def __init__(self, env: Environment | None = None,
                 default: LinkSpec | None = None):
        self.env = env or Environment()
        self.default = default or LinkSpec()
        self._overrides: Dict[Tuple[str, str], LinkSpec] = {}
        self._resources: Dict[Tuple[str, str], Resource] = {}
        #: total bytes moved, per (src, dst) — for experiment reporting
        self.bytes_moved: Dict[Tuple[str, str], int] = {}
        #: total messages sent, per (src, dst)
        self.messages: Dict[Tuple[str, str], int] = {}
        #: bytes that would have crossed each link but were elided by a
        #: transfer cache hit (delta captures, cached classes, object
        #: revalidations) — the migration fast path's savings meter
        self.bytes_saved: Dict[Tuple[str, str], int] = {}
        #: chaos state: directed links currently down, crashed nodes,
        #: and failure epochs (each fail bumps one — an in-flight
        #: message checks its epoch on landing, so a link that went
        #: down and healed mid-flight still drops it)
        self._down: set = set()
        self._dead: set = set()
        self._link_epoch: Dict[Tuple[str, str], int] = {}
        self._node_epoch: Dict[str, int] = {}
        #: messages dropped by injected faults, per (src, dst)
        self.dropped: Dict[Tuple[str, str], int] = {}

    def set_link(self, a: str, b: str, spec: LinkSpec,
                 symmetric: bool = True) -> None:
        """Override the link between ``a`` and ``b``."""
        self._overrides[(a, b)] = spec
        if symmetric:
            self._overrides[(b, a)] = spec

    def link(self, src: str, dst: str) -> LinkSpec:
        """The link spec used from ``src`` to ``dst``."""
        if src == dst:
            # Loopback: effectively free but not zero (memcpy-ish).
            return LinkSpec(bandwidth=gbps(80), latency=us(1), per_message_bytes=0)
        return self._overrides.get((src, dst), self.default)

    # -- fault injection (the chaos layer) --------------------------------

    def fail_link(self, a: str, b: str, symmetric: bool = True) -> None:
        """Take the ``a -> b`` link down (both directions by default).
        Messages currently on the wire are lost (their failure epoch
        ticks), and new transfers report dropped until healed."""
        self._down.add((a, b))
        self._link_epoch[(a, b)] = self._link_epoch.get((a, b), 0) + 1
        if symmetric:
            self._down.add((b, a))
            self._link_epoch[(b, a)] = self._link_epoch.get((b, a), 0) + 1

    def heal_link(self, a: str, b: str, symmetric: bool = True) -> None:
        """Bring the ``a -> b`` link back up."""
        self._down.discard((a, b))
        if symmetric:
            self._down.discard((b, a))

    def partition(self, group: Iterable[str], others: Iterable[str]) -> None:
        """Fail every link between ``group`` and ``others`` (both
        directions): a network partition between the two sides."""
        for a in group:
            for b in others:
                self.fail_link(a, b)

    def heal_partition(self, group: Iterable[str],
                       others: Iterable[str]) -> None:
        """Heal every link a matching :meth:`partition` call failed."""
        for a in group:
            for b in others:
                self.heal_link(a, b)

    def crash_node(self, name: str) -> None:
        """Node ``name`` died: every message in flight to or from it is
        lost and every future transfer touching it reports dropped."""
        self._dead.add(name)
        self._node_epoch[name] = self._node_epoch.get(name, 0) + 1

    def is_up(self, src: str, dst: str) -> bool:
        """Can a message currently enter the ``src -> dst`` wire?"""
        return ((src, dst) not in self._down
                and src not in self._dead and dst not in self._dead)

    def _epoch(self, src: str, dst: str) -> int:
        """Combined failure epoch of the directed link and its
        endpoints — unchanged across a transfer iff no fault touched
        the path mid-flight."""
        return (self._link_epoch.get((src, dst), 0)
                + self._node_epoch.get(src, 0)
                + self._node_epoch.get(dst, 0))

    def _record_drop(self, src: str, dst: str) -> None:
        key = (src, dst)
        self.dropped[key] = self.dropped.get(key, 0) + 1

    def total_dropped(self) -> int:
        """All messages injected faults have destroyed so far."""
        return sum(self.dropped.values())

    # -- instantaneous accounting (no contention) -------------------------

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Time to move ``nbytes`` from ``src`` to ``dst``, and record it."""
        spec = self.link(src, dst)
        t = spec.transfer_time(nbytes)
        key = (src, dst)
        self.bytes_moved[key] = self.bytes_moved.get(key, 0) + nbytes
        self.messages[key] = self.messages.get(key, 0) + 1
        return t

    def rtt(self, src: str, dst: str, request_bytes: int, reply_bytes: int) -> float:
        """Round-trip request/reply time, recorded in both directions."""
        t = self.transfer_time(src, dst, request_bytes)
        t += self.transfer_time(dst, src, reply_bytes)
        return t

    # -- event-kernel integration (contention-aware) ----------------------

    def _resource(self, src: str, dst: str) -> Resource:
        key = (src, dst)
        if key not in self._resources:
            self._resources[key] = Resource(self.env, capacity=1)
        return self._resources[key]

    def transfer_proc(self, src: str, dst: str,
                      nbytes: int) -> Generator[Event, None, bool]:
        """A process generator performing a serialized transfer on the
        (src, dst) link: concurrent transfers on the same directed link
        queue up FIFO.  Yields kernel events; usable with
        ``env.process(net.transfer_proc(...))`` or via ``ok = yield
        from ...``.  Returns True iff the message was delivered: a
        transfer attempted on a down link (or one whose link/endpoint
        failed mid-flight) still burns its wire time — the sender only
        learns of the loss when the timeout expires, as with a real
        connection — but returns False."""
        res = self._resource(src, dst)
        yield res.request()
        up0 = self.is_up(src, dst)
        e0 = self._epoch(src, dst)
        try:
            yield self.env.timeout(self.transfer_time(src, dst, nbytes))
        finally:
            res.release()
        ok = up0 and self.is_up(src, dst) and self._epoch(src, dst) == e0
        if not ok:
            self._record_drop(src, dst)
        return ok

    def occupy_proc(self, src: str, dst: str,
                    seconds: float) -> Generator[Event, None, bool]:
        """Hold the directed (src, dst) link for ``seconds`` of
        *already-accounted* transfer time: the caller computed (and
        recorded) the byte-level cost elsewhere — e.g. a bulk SOD
        offload message priced by the migration engine — and this
        serializes its occupancy so concurrent transfers queue FIFO
        instead of overlapping for free.  No bytes are re-recorded.
        Returns the same delivered verdict as :meth:`transfer_proc`."""
        res = self._resource(src, dst)
        yield res.request()
        up0 = self.is_up(src, dst)
        e0 = self._epoch(src, dst)
        try:
            yield self.env.timeout(seconds)
        finally:
            res.release()
        ok = up0 and self.is_up(src, dst) and self._epoch(src, dst) == e0
        if not ok:
            self._record_drop(src, dst)
        return ok

    def record_saved(self, src: str, dst: str, nbytes: int) -> None:
        """Account bytes a transfer-cache hit kept off the (src, dst)
        link (the payload was *not* moved; only the savings meter
        advances)."""
        if nbytes <= 0:
            return
        key = (src, dst)
        self.bytes_saved[key] = self.bytes_saved.get(key, 0) + nbytes

    def total_bytes(self) -> int:
        """All bytes moved over every link so far."""
        return sum(self.bytes_moved.values())

    def total_saved(self) -> int:
        """All bytes elided by transfer-cache hits so far."""
        return sum(self.bytes_saved.values())
